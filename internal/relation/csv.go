package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// csvHeader is the canonical column order for CSV interchange.
var csvHeader = []string{"name", "value", "start", "end"}

// ReadCSV parses a relation from CSV with columns name,value,start,end. A
// header row matching those column names (any case) is skipped. The end
// column accepts "forever" (any case) or "∞" for open-ended tuples.
func ReadCSV(r io.Reader, name string) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.TrimLeadingSpace = true
	rel := New(name)
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: csv: %w", err)
		}
		line++
		if line == 1 && isCSVHeader(rec) {
			continue
		}
		t, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("relation: csv line %d: %w", line, err)
		}
		rel.Append(t)
	}
}

func isCSVHeader(rec []string) bool {
	for i, want := range csvHeader {
		if !strings.EqualFold(strings.TrimSpace(rec[i]), want) {
			return false
		}
	}
	return true
}

func parseCSVRecord(rec []string) (tuple.Tuple, error) {
	value, err := strconv.ParseInt(strings.TrimSpace(rec[1]), 10, 64)
	if err != nil {
		return tuple.Tuple{}, fmt.Errorf("bad value %q: %w", rec[1], err)
	}
	start, err := strconv.ParseInt(strings.TrimSpace(rec[2]), 10, 64)
	if err != nil {
		return tuple.Tuple{}, fmt.Errorf("bad start %q: %w", rec[2], err)
	}
	endField := strings.TrimSpace(rec[3])
	var end interval.Time
	if strings.EqualFold(endField, "forever") || endField == "∞" {
		end = interval.Forever
	} else {
		end, err = strconv.ParseInt(endField, 10, 64)
		if err != nil {
			return tuple.Tuple{}, fmt.Errorf("bad end %q: %w", rec[3], err)
		}
	}
	return tuple.New(strings.TrimSpace(rec[0]), value, start, end)
}

// WriteCSV writes the relation as CSV with a header row; open-ended tuples
// write "forever" in the end column.
func WriteCSV(w io.Writer, rel *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("relation: csv: %w", err)
	}
	for i, t := range rel.Tuples {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("relation: csv tuple %d: %w", i, err)
		}
		end := "forever"
		if t.Valid.End != interval.Forever {
			end = strconv.FormatInt(t.Valid.End, 10)
		}
		rec := []string{
			t.Name,
			strconv.FormatInt(t.Value, 10),
			strconv.FormatInt(t.Valid.Start, 10),
			end,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("relation: csv: %w", err)
	}
	return nil
}
