// Fixture for the errdrop analyzer: discarded error results from tempagg
// APIs are flagged — bare statements, go/defer calls, and blank
// assignments; handled errors, stdlib calls, and `defer Close` are clean.
package fixture

import (
	"fmt"

	"tempagg/internal/core"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

func bareCalls(ev core.Evaluator, t tuple.Tuple) {
	ev.Add(t)   // want `error result of \(core\.Evaluator\)\.Add is discarded`
	ev.Finish() // want `error result of \(core\.Evaluator\)\.Finish is discarded`
}

func blankAssigns(ev core.Evaluator, t tuple.Tuple) {
	_ = ev.Add(t)         // want `error result of \(core\.Evaluator\)\.Add is assigned to _`
	res, _ := ev.Finish() // want `error result of \(core\.Evaluator\)\.Finish is assigned to _`
	_ = res
}

func goroutineBodies(ev core.Evaluator, t tuple.Tuple) {
	go ev.Add(t) // want `error result of \(core\.Evaluator\)\.Add is discarded by go`
	go func() {
		ev.Add(t) // want `error result of \(core\.Evaluator\)\.Add is discarded`
	}()
}

func deferred(sc *relation.Scanner, ev core.Evaluator) {
	defer ev.Finish() // want `error result of \(core\.Evaluator\)\.Finish is discarded by defer`
	defer sc.Close()  // ok: best-effort close on a read path is conventional
}

func loaders() {
	relation.Open("missing.rel", relation.ScanOptions{}) // want `error result of relation\.Open is discarded`
}

func handled(ev core.Evaluator, t tuple.Tuple) error {
	if err := ev.Add(t); err != nil {
		return err
	}
	res, err := ev.Finish()
	if err != nil {
		return err
	}
	fmt.Println(res)    // ok: stdlib errors are out of scope here
	stats := ev.Stats() // ok: no error result
	_ = stats
	return nil
}

func suppressed(ev core.Evaluator, t tuple.Tuple) {
	//tempagglint:ignore errdrop fixture demonstrates a justified suppression
	ev.Add(t) // ok: suppressed by the directive above
}
