package lint_test

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"

	"tempagg/internal/lint"
)

// buildCFG parses src as a function body and lowers it.
func buildCFG(t *testing.T, body string) (*lint.CFG, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return lint.BuildCFG(fn.Body), fset
}

// cfgString renders a CFG deterministically: one line per block, nodes as
// compressed source text, successors with T/F labels on two-way branches.
func cfgString(fset *token.FileSet, g *lint.CFG) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.Index)
		for _, n := range b.Nodes {
			sb.WriteString(" [" + nodeText(fset, n) + "]")
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" =>")
			for i, s := range b.Succs {
				label := ""
				if b.Cond != nil && len(b.Succs) == 2 {
					label = [2]string{"T", "F"}[i]
				}
				fmt.Fprintf(&sb, " %sb%d", label, s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeText(fset *token.FileSet, n ast.Node) string {
	if _, ok := n.(*lint.ImplicitReturn); ok {
		return "end"
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "?"
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// TestBuildCFG pins the lowering of each control-flow shape the dataflow
// analyzers rely on: edge labels, loop back edges, fallthrough chaining,
// terminator cuts, and labeled branches.
func TestBuildCFG(t *testing.T) {
	tests := []struct {
		name string
		body string
		want string
	}{
		{
			name: "straight line",
			body: "x := 1\nreturn",
			want: "b0: [x := 1] [return]\n",
		},
		{
			name: "if without else",
			body: "x := 1\nif x > 0 {\nx = 2\n}\nx = 3",
			want: "b0: [x := 1] [x > 0] => Tb1 Fb2\n" +
				"b1: [x = 2] => b2\n" +
				"b2: [x = 3] [end]\n",
		},
		{
			name: "if else",
			body: "if c() {\na()\n} else {\nb()\n}\nd()",
			want: "b0: [c()] => Tb1 Fb2\n" +
				"b1: [a()] => b3\n" +
				"b2: [b()] => b3\n" +
				"b3: [d()] [end]\n",
		},
		{
			name: "for with cond post break continue",
			body: "for i := 0; i < 9; i++ {\nif i == 3 {\ncontinue\n}\nif i == 5 {\nbreak\n}\nuse(i)\n}\ndone()",
			want: "b0: [i := 0] => b1\n" +
				"b1: [i < 9] => Tb3 Fb2\n" +
				"b2: [done()] [end]\n" +
				"b3: [i == 3] => Tb5 Fb6\n" +
				"b4: [i++] => b1\n" +
				"b5: [continue] => b4\n" +
				"b6: [i == 5] => Tb7 Fb8\n" +
				"b7: [break] => b2\n" +
				"b8: [use(i)] => b4\n",
		},
		{
			name: "infinite for with break",
			body: "for {\nif done() {\nbreak\n}\n}\nafter()",
			want: "b0: => b1\n" +
				"b1: => b3\n" +
				"b2: [after()] [end]\n" +
				"b3: [done()] => Tb4 Fb5\n" +
				"b4: [break] => b2\n" +
				"b5: => b1\n",
		},
		{
			name: "range",
			body: "for _, v := range xs {\nuse(v)\n}\ndone()",
			want: "b0: => b1\n" +
				"b1: [for _, v := range xs { use(v) }] => b3 b2\n" +
				"b2: [done()] [end]\n" +
				"b3: [use(v)] => b1\n",
		},
		{
			name: "switch with fallthrough and default",
			body: "switch x() {\ncase 1:\na()\nfallthrough\ncase 2:\nb()\ndefault:\nc()\n}\nd()",
			want: "b0: [x()] => b2 b3 b4\n" +
				"b1: [d()] [end]\n" +
				"b2: [1] [a()] [fallthrough] => b3\n" +
				"b3: [2] [b()] => b1\n" +
				"b4: [c()] => b1\n",
		},
		{
			name: "switch without default exits past cases",
			body: "switch x {\ncase 1:\na()\n}\nd()",
			want: "b0: [x] => b2 b1\n" +
				"b1: [d()] [end]\n" +
				"b2: [1] [a()] => b1\n",
		},
		{
			name: "type switch",
			body: "switch v := x.(type) {\ncase int:\na(v)\ndefault:\nb(v)\n}\nd()",
			want: "b0: [v := x.(type)] => b2 b3\n" +
				"b1: [d()] [end]\n" +
				"b2: [a(v)] => b1\n" +
				"b3: [b(v)] => b1\n",
		},
		{
			name: "select",
			body: "select {\ncase v := <-ch:\na(v)\ncase out <- 1:\nb()\n}\nd()",
			want: "b0: => b2 b3\n" +
				"b1: [d()] [end]\n" +
				"b2: [v := <-ch] [a(v)] => b1\n" +
				"b3: [out <- 1] [b()] => b1\n",
		},
		{
			name: "panic terminates block and strands dead code",
			body: "a()\npanic(\"boom\")\nb()",
			want: "b0: [a()] [panic(\"boom\")]\n" +
				"b1: [b()] [end]\n",
		},
		{
			name: "os.Exit and t.Fatal terminate",
			body: "if bad {\nt.Fatal(\"no\")\n}\nos.Exit(0)",
			want: "b0: [bad] => Tb1 Fb2\n" +
				"b1: [t.Fatal(\"no\")]\n" +
				"b2: [os.Exit(0)]\n",
		},
		{
			name: "labeled break and continue",
			body: "outer:\nfor {\nfor {\nif a() {\ncontinue outer\n}\nif b() {\nbreak outer\n}\n}\n}\ndone()",
			want: "b0: => b1\n" + // label target
				"b1: => b2\n" + // outer loop entry
				"b2: => b4\n" + // outer head → outer body
				"b3: [done()] [end]\n" + // outer after
				"b4: => b5\n" + // outer body → inner head
				"b5: => b7\n" + // inner head → inner body
				"b6: => b2\n" + // inner after → outer head (back edge)
				"b7: [a()] => Tb8 Fb9\n" +
				"b8: [continue outer] => b2\n" +
				"b9: [b()] => Tb10 Fb11\n" +
				"b10: [break outer] => b3\n" +
				"b11: => b5\n", // inner body end → inner head
		},
		{
			name: "goto backward",
			body: "again:\nx()\nif retry() {\ngoto again\n}\ndone()",
			want: "b0: => b1\n" +
				"b1: [x()] [retry()] => Tb2 Fb3\n" +
				"b2: [goto again] => b1\n" +
				"b3: [done()] [end]\n",
		},
		{
			name: "defer and go are straight-line nodes",
			body: "defer mu.Unlock()\ngo work()\nx := 1\n_ = x",
			want: "b0: [defer mu.Unlock()] [go work()] [x := 1] [_ = x] [end]\n",
		},
		{
			name: "func lit body is opaque",
			body: "f := func() {\nif x {\nreturn\n}\n}\nf()",
			want: "b0: [f := func() { if x { return } }] [f()] [end]\n",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, fset := buildCFG(t, tt.body)
			got := cfgString(fset, g)
			if got != tt.want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, tt.want)
			}
		})
	}
}

// assignedVars is a toy forward may-analysis (union join) used to exercise
// the worklist solver: the fact is the set of variable names that may have
// been assigned on some path.
type assignedVars struct{}

func (assignedVars) Entry() map[string]bool { return map[string]bool{} }

func (assignedVars) Transfer(n ast.Node, f map[string]bool) map[string]bool {
	a, ok := n.(*ast.AssignStmt)
	if !ok {
		return f
	}
	out := make(map[string]bool, len(f)+len(a.Lhs))
	for k := range f {
		out[k] = true
	}
	for _, lhs := range a.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			out[id.Name] = true
		}
	}
	return out
}

func (assignedVars) Branch(_ ast.Expr, _ bool, f map[string]bool) map[string]bool { return f }

func (assignedVars) Join(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (assignedVars) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestForwardSolver checks fixpoint behavior: assignments inside loop
// bodies and both arms of a branch all reach the function end, and facts
// never flow into unreachable blocks.
func TestForwardSolver(t *testing.T) {
	g, _ := buildCFG(t, `
a := 1
if cond {
	b := 2
	_ = b
} else {
	c := 3
	_ = c
}
for i := 0; i < 3; i++ {
	d := 4
	_ = d
}
return
e := 5
_ = e
`)
	in := lint.Forward[map[string]bool](g, assignedVars{})

	var atEnd map[string]bool
	sawUnreachable := false
	lint.WalkFacts[map[string]bool](g, assignedVars{}, in, func(n ast.Node, f map[string]bool) {
		if _, ok := n.(*ast.ReturnStmt); ok {
			atEnd = f
		}
	})
	for _, b := range g.Blocks {
		if _, ok := in[b]; ok {
			continue
		}
		// The block after `return` (assigning e) must be unreachable.
		for _, n := range b.Nodes {
			if a, ok := n.(*ast.AssignStmt); ok {
				if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == "e" {
					sawUnreachable = true
				}
			}
		}
	}
	if atEnd == nil {
		t.Fatal("no fact observed at the return statement")
	}
	for _, name := range []string{"a", "b", "c", "d", "i"} {
		if !atEnd[name] {
			t.Errorf("assignment to %q did not reach the function end fact: %v", name, atEnd)
		}
	}
	if atEnd["e"] {
		t.Errorf("dead assignment to e leaked into reachable facts: %v", atEnd)
	}
	if !sawUnreachable {
		t.Error("block containing the dead assignment to e was not left unsolved")
	}
}
