// ResultCache: an LRU, version-keyed cache of finished range-query
// results (DESIGN.md S37).
//
// Staleness is structural, not timed: the cache key carries the relation's
// version — a file fingerprint for batch relations, the live epoch seqno
// for live ones — so ingestion can never cause a stale entry to be served.
// A new epoch simply keys new entries; superseded epochs age out through
// the LRU. This is the invalidation clock Colley's delta-summation work
// gets from maintaining summaries under appends, obtained here for free
// from the live protocol's published seqno (S36).
package core

import (
	"container/list"
	"sync"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
)

// DefaultResultCacheCapacity is the entry bound a zero capacity resolves
// to: enough for a dashboard's worth of distinct (window, aggregate)
// panels across a handful of epochs.
const DefaultResultCacheCapacity = 256

// CacheKey identifies one cached range-query answer.
type CacheKey struct {
	// Relation is the relation name.
	Relation string
	// Version pins the relation contents the entry was computed over: a
	// file fingerprint for batch relations, "epoch:<seq>" for live ones.
	// Any change of contents changes the version, so stale entries are
	// unreachable rather than merely expired.
	Version string
	// Kind is the aggregate computed.
	Kind aggregate.Kind
	// Distinct marks duplicate-eliminated input.
	Distinct bool
	// Window is the query's restriction: the VALID OVERLAPS window, or
	// [t, t] for an AT query.
	Window interval.Interval
}

// CacheStats is a point-in-time snapshot of the cache's counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// ResultCache is a bounded LRU over finished results. It is safe for
// concurrent use. Entries are stored and served by copy: callers may
// mutate what Get returns (Clip, Coalesce) without corrupting the cache.
// After Close the cache must not be used (tempagglint's finishonce
// analyzer enforces this like the evaluators' Finish contract).
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[CacheKey]*list.Element
	stats   CacheStats
	closed  bool
}

type cacheEntry struct {
	key CacheKey
	res *Result
}

// NewResultCache returns a cache bounded to capacity entries; capacity
// ≤ 0 means DefaultResultCacheCapacity.
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultResultCacheCapacity
	}
	return &ResultCache{
		cap:     capacity,
		order:   list.New(),
		entries: map[CacheKey]*list.Element{},
	}
}

// Get returns a copy of the entry for key, marking it most recently used.
// A miss (or a closed cache) returns false.
func (c *ResultCache) Get(key CacheKey) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	return &Result{Func: res.Func, Rows: append([]Row(nil), res.Rows...)}, true
}

// Put stores a copy of res under key, evicting least-recently-used
// entries beyond capacity, and reports how many were evicted. Storing an
// existing key refreshes its value and recency.
func (c *ResultCache) Put(key CacheKey, res *Result) (evicted int) {
	clone := &Result{Func: res.Func, Rows: append([]Row(nil), res.Rows...)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = clone
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: clone})
	for len(c.entries) > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		evicted++
	}
	c.stats.Evictions += int64(evicted)
	return evicted
}

// Stats snapshots the cache's counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// Close empties the cache; subsequent Get and Put calls are inert misses.
// Close is idempotent.
func (c *ResultCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.order.Init()
	c.entries = map[CacheKey]*list.Element{}
	return nil
}
