package relation

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := Employed()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "Employed")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round trip lost tuples: %d != %d", got.Len(), orig.Len())
	}
	for i := range orig.Tuples {
		if got.Tuples[i] != orig.Tuples[i] {
			t.Fatalf("tuple %d: %v != %v", i, got.Tuples[i], orig.Tuples[i])
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	prop := func() bool {
		rel := randomRelation(r, r.Intn(100))
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, rel.Name)
		if err != nil {
			return false
		}
		if got.Len() != rel.Len() {
			return false
		}
		for i := range rel.Tuples {
			if got.Tuples[i] != rel.Tuples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVReadWithoutHeader(t *testing.T) {
	in := "Karen,45,8,20\nRich,40,18,forever\n"
	rel, err := ReadCSV(strings.NewReader(in), "R")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("%d tuples", rel.Len())
	}
	if rel.Tuples[1].Valid.End != interval.Forever {
		t.Fatal("forever not parsed")
	}
}

func TestCSVReadHeaderVariants(t *testing.T) {
	in := "NAME,Value,Start,END\nKaren,45,8,20\n"
	rel, err := ReadCSV(strings.NewReader(in), "R")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("%d tuples (header not skipped?)", rel.Len())
	}
}

func TestCSVReadInfinitySymbol(t *testing.T) {
	rel, err := ReadCSV(strings.NewReader("a,1,0,∞\n"), "R")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0].Valid.End != interval.Forever {
		t.Fatal("∞ not parsed")
	}
}

func TestCSVReadErrors(t *testing.T) {
	cases := map[string]string{
		"wrong field count": "a,1,2\n",
		"bad value":         "a,x,0,5\n",
		"bad start":         "a,1,x,5\n",
		"bad end":           "a,1,0,x\n",
		"reversed interval": "a,1,9,5\n",
		"long name":         "abcdefgh,1,0,5\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "R"); err == nil {
			t.Errorf("%s: expected error for %q", name, in)
		}
	}
}

func TestCSVWriteRejectsInvalidTuple(t *testing.T) {
	rel := New("bad")
	//tempagglint:ignore intervalbounds the test needs an invalid tuple to exercise write rejection
	rel.Tuples = append(rel.Tuples, tuple.Tuple{Name: "x", Valid: interval.Interval{Start: 9, End: 1}})
	if err := WriteCSV(&bytes.Buffer{}, rel); err == nil {
		t.Fatal("expected error for invalid tuple")
	}
}

// FuzzReadCSV checks that arbitrary input never panics the CSV reader and
// that accepted relations round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("name,value,start,end\nKaren,45,8,20\n")
	f.Add("a,1,0,forever\n")
	f.Add("a,1,0,∞\n")
	f.Add("x,,,\n")
	f.Add("\"q\"\"uote\",1,2,3\n")
	f.Fuzz(func(t *testing.T, input string) {
		rel, err := ReadCSV(strings.NewReader(input), "F")
		if err != nil {
			return
		}
		if err := rel.Validate(); err != nil {
			t.Fatalf("accepted relation fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("accepted relation fails to write: %v", err)
		}
		back, err := ReadCSV(&buf, "F")
		if err != nil {
			t.Fatalf("round trip read failed: %v", err)
		}
		if back.Len() != rel.Len() {
			t.Fatalf("round trip changed cardinality: %d != %d", back.Len(), rel.Len())
		}
	})
}
