// Command relstat inspects a relation file and prints the statistics the
// query optimizer cares about (§6.3): cardinality, lifespan, sortedness
// (k-orderedness and, for a given k, the k-ordered-percentage), the
// long-lived tuple fraction, and the number of constant intervals the
// relation induces.
//
// Usage:
//
//	relstat -relation r.rel [-k 100]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tempagg"
	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/order"
	"tempagg/internal/relation"
	relstats "tempagg/internal/stats"
	"tempagg/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relstat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("relstat", flag.ContinueOnError)
	var (
		relPath = fs.String("relation", "", "relation file to inspect (required)")
		k       = fs.Int("k", 0, "also report the k-ordered-percentage for this k (0: only minimal k)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *relPath == "" {
		return fmt.Errorf("-relation is required")
	}
	rel, err := tempagg.ReadRelation(*relPath)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "file:               %s\n", *relPath)
	fmt.Fprintf(out, "tuples:             %d\n", rel.Len())
	if span, ok := rel.Lifespan(); ok {
		fmt.Fprintf(out, "lifespan:           %s\n", span)
	} else {
		fmt.Fprintf(out, "lifespan:           (empty relation)\n")
	}

	minK := order.KOrderedness(rel.Tuples)
	fmt.Fprintf(out, "sorted:             %t\n", minK == 0)
	fmt.Fprintf(out, "k-orderedness:      %d (minimal k)\n", minK)
	if *k > 0 {
		pct, err := order.KOrderedPercentage(rel.Tuples, *k)
		if err != nil {
			fmt.Fprintf(out, "k-ordered-pct(k=%d): n/a (%v)\n", *k, err)
		} else {
			fmt.Fprintf(out, "k-ordered-pct(k=%d): %.4f\n", *k, pct)
		}
	}

	long := 0
	for _, t := range rel.Tuples {
		if t.Valid.Duration() > workload.DefaultShortMax {
			long++
		}
	}
	if rel.Len() > 0 {
		fmt.Fprintf(out, "long-lived:         %d (%.1f%% with duration > %d)\n",
			long, 100*float64(long)/float64(rel.Len()), workload.DefaultShortMax)
	}

	// Constant intervals and unique timestamps, via a cheap COUNT run.
	res, stats, err := core.Run(core.Spec{Algorithm: core.AggregationTree},
		aggregate.For(aggregate.Count), rel.Tuples)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "constant intervals: %d\n", len(res.Rows))
	est := relstats.EstimateConstantIntervals(rel.Tuples, 256, 1)
	fmt.Fprintf(out, "sampled estimate:   %d (Chao1 over 256 tuples)\n", est)
	fmt.Fprintf(out, "tree peak memory:   %d bytes (%d nodes)\n",
		stats.PeakBytes(), stats.PeakNodes)

	dupes := len(rel.Tuples) - len(relation.Deduplicate(rel.Tuples))
	fmt.Fprintf(out, "exact duplicates:   %d\n", dupes)
	return nil
}
