package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

func TestPoolBalance(t *testing.T) {
	linttest.Run(t, lint.PoolBalance, "poolbalance")
}
