// Command tempagg executes TSQL2-flavoured temporal aggregate queries over
// relation files.
//
// Usage:
//
//	tempagg -relation employed.rel -query "SELECT COUNT(Name) FROM Employed"
//	tempagg -relation employed.rel -i      # interactive: one query per line
//
// Queries stream off the paged scanner (the paper's single segmented scan)
// whenever the plan allows; Tuma's baseline performs two real scans. The
// relation name in the FROM clause must match -name (default: the file name
// without extension). The optimizer consults the file's sorted flag; a
// -kbound declaration marks the relation retroactively bounded (§6.3), and
// -memory bounds evaluation-structure memory in bytes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tempagg"
	"tempagg/internal/catalog"
	"tempagg/internal/obs"
	"tempagg/internal/query"
	"tempagg/internal/relation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tempagg:", err)
		os.Exit(1)
	}
}

type config struct {
	relPath   string
	dbDir     string
	name      string
	kbound    int
	memory    int64
	coalesce  bool
	explain   bool
	jsonOut   bool
	chart     bool
	trace     bool
	randomize bool
	seed      int64
	costMem   float64
	costIO    float64
	costCPU   float64
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tempagg", flag.ContinueOnError)
	var (
		cfg         config
		sql         = fs.String("query", "", "query text (or use -i / -f)")
		script      = fs.String("f", "", "file of queries, one per line; # starts a comment")
		interactive = fs.Bool("i", false, "read one query per line from stdin")
	)
	fs.StringVar(&cfg.relPath, "relation", "", "relation file to query (this or -db is required)")
	fs.StringVar(&cfg.dbDir, "db", "", "catalog directory of .rel files; FROM resolves against it")
	fs.StringVar(&cfg.name, "name", "", "relation name for the FROM clause (default: file base name)")
	fs.IntVar(&cfg.kbound, "kbound", -1, "declare the relation k-ordered with this bound (-1: unknown)")
	fs.Int64Var(&cfg.memory, "memory", 0, "memory budget in bytes for evaluation structures (0: unlimited)")
	fs.BoolVar(&cfg.coalesce, "coalesce", false, "coalesce adjacent equal-valued constant intervals")
	fs.BoolVar(&cfg.explain, "explain", false, "print only the chosen plan and the planner's ranked alternatives")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit results as JSON instead of tables")
	fs.Float64Var(&cfg.costMem, "cost-memory", 0, "cost-based planning: price per resident byte")
	fs.Float64Var(&cfg.costIO, "cost-io", 0, "cost-based planning: price per page I/O")
	fs.Float64Var(&cfg.costCPU, "cost-cpu", 0, "cost-based planning: price per tuple of CPU")
	fs.BoolVar(&cfg.chart, "chart", false, "render results as ASCII bar charts")
	fs.BoolVar(&cfg.trace, "trace", false, "print each query's trace (spans, plan, evaluator counters) as a JSON line")
	fs.BoolVar(&cfg.randomize, "randomize-pages", false, "scan pages in random order (avoids linearizing the tree on sorted files, §7)")
	fs.Int64Var(&cfg.seed, "seed", 1, "seed for -randomize-pages")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.relPath == "" && cfg.dbDir == "" {
		return fmt.Errorf("-relation or -db is required")
	}
	if *sql == "" && !*interactive && *script == "" {
		return fmt.Errorf("-query, -f, or -i is required")
	}
	if cfg.name == "" && cfg.relPath != "" {
		base := filepath.Base(cfg.relPath)
		cfg.name = strings.TrimSuffix(base, filepath.Ext(base))
	}

	if *sql != "" {
		if err := oneQuery(cfg, *sql, out); err != nil {
			return err
		}
	}
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if err := oneQuery(cfg, line, out); err != nil {
				return fmt.Errorf("%s: %w", line, err)
			}
		}
	}
	if *interactive {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
				break
			}
			if err := oneQuery(cfg, line, out); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			}
		}
		return sc.Err()
	}
	return nil
}

func oneQuery(cfg config, sql string, out io.Writer) error {
	sopts := relation.ScanOptions{RandomizePages: cfg.randomize, Seed: cfg.seed}
	// With -trace each query gets a throwaway observer; its single-entry
	// ring holds exactly the trace to print.
	var o *obs.Observer
	if cfg.trace {
		o = obs.NewObserver(1, nil)
	}
	if cfg.dbDir != "" {
		cat, err := catalog.Open(cfg.dbDir)
		if err != nil {
			return err
		}
		qr, err := cat.QueryObserved(sql, sopts, o)
		if terr := emitTrace(o, out); terr != nil {
			return terr
		}
		if err != nil {
			return err
		}
		return render(cfg, qr, out)
	}

	q, err := query.Parse(sql)
	if err != nil {
		return err
	}
	if q.Relation != cfg.name {
		return fmt.Errorf("relation %q not found (file provides %q)", q.Relation, cfg.name)
	}

	costs := query.CostModel{MemoryByte: cfg.costMem, PageIO: cfg.costIO, CPUTuple: cfg.costCPU}
	var info *tempagg.RelationInfo
	if cfg.kbound >= 0 || cfg.memory > 0 || costs.Enabled() {
		sc, err := relation.Open(cfg.relPath, relation.ScanOptions{})
		if err != nil {
			return err
		}
		info = &tempagg.RelationInfo{
			Tuples:       sc.Count(),
			Sorted:       sc.Sorted() && !cfg.randomize,
			KBound:       cfg.kbound,
			MemoryBudget: cfg.memory,
			Cost:         costs,
		}
		if err := sc.Close(); err != nil {
			return err
		}
	}
	tr := o.StartQuery(sql)
	qr, err := query.ExecuteFileTraced(q, cfg.relPath, info, sopts, tr)
	o.FinishQuery(tr, err)
	if terr := emitTrace(o, out); terr != nil {
		return terr
	}
	if err != nil {
		return err
	}
	return render(cfg, qr, out)
}

// emitTrace prints the observer's latest query trace as one JSON line; a
// nil observer (no -trace) is a no-op.
func emitTrace(o *obs.Observer, out io.Writer) error {
	if o == nil {
		return nil
	}
	trs := o.Traces.Snapshot()
	if len(trs) == 0 {
		return nil
	}
	data, err := json.Marshal(trs[len(trs)-1])
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "-- trace: %s\n", data)
	return err
}

func render(cfg config, qr *query.QueryResult, out io.Writer) error {
	if cfg.explain {
		// Same report as an EXPLAIN statement: chosen plan plus the ranked
		// alternatives the planner considered. If the query itself was an
		// EXPLAIN [ANALYZE], its (possibly traced) report is already rendered.
		if qr.Explain != "" {
			fmt.Fprint(out, qr.Explain)
		} else {
			fmt.Fprint(out, query.RenderExplain(qr, nil))
		}
		return nil
	}
	if cfg.coalesce {
		for _, g := range qr.Groups {
			for _, res := range g.Results {
				res.Coalesce()
			}
		}
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		return enc.Encode(qr)
	}
	if cfg.chart {
		fmt.Fprintf(out, "-- plan: %s\n", qr.Plan)
		for _, g := range qr.Groups {
			if g.Key != "" {
				fmt.Fprintf(out, "-- group %s\n", g.Key)
			}
			for _, res := range g.Results {
				fmt.Fprint(out, res.Chart(48))
			}
		}
		return nil
	}
	fmt.Fprint(out, qr)
	return nil
}
