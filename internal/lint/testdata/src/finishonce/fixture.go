// Fixture for the finishonce analyzer (default mode): Add after Finish and
// double Finish are flagged; Stats after Finish is permitted by the
// documented contract; reassignment resets the tracking. The live
// evaluator carries the same contract with Close as its terminal call,
// with deferred Close exempt.
package fixture

import (
	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func reuseAfterFinish(ev core.Evaluator, t tuple.Tuple) error {
	if err := ev.Add(t); err != nil { // ok: Add before Finish
		return err
	}
	if _, err := ev.Finish(); err != nil {
		return err
	}
	return ev.Add(t) // want `Add called on ev after Finish`
}

func doubleFinish(ev core.Evaluator) {
	_, _ = ev.Finish()
	_, _ = ev.Finish() // want `Finish called twice on ev`
}

func batchAfterFinish(ev core.Evaluator, ts []tuple.Tuple) error {
	if err := ev.AddBatch(ts); err != nil { // ok: AddBatch before Finish
		return err
	}
	if _, err := ev.Finish(); err != nil {
		return err
	}
	return ev.AddBatch(ts) // want `AddBatch called on ev after Finish`
}

func statsAfterFinish(ev core.Evaluator) core.Stats {
	_, _ = ev.Finish()
	return ev.Stats() // ok by default: the contract allows Stats "at any point"
}

func concreteEvaluator(f aggregate.Func, t tuple.Tuple) error {
	kt, err := core.NewKOrderedTree(f, 1)
	if err != nil {
		return err
	}
	if _, err := kt.Finish(); err != nil {
		return err
	}
	return kt.Add(t) // want `Add called on kt after Finish`
}

func sweepEvaluator(f aggregate.Func, t tuple.Tuple) error {
	sw := core.NewSweep(f)
	if err := sw.Add(t); err != nil { // ok: Add before Finish
		return err
	}
	if _, err := sw.Finish(); err != nil {
		return err
	}
	_ = sw.Stats()   // ok: Stats is allowed after Finish
	return sw.Add(t) // want `Add called on sw after Finish`
}

func reassigned(f aggregate.Func, t tuple.Tuple) error {
	ev := core.Evaluator(core.NewLinkedList(f))
	if _, err := ev.Finish(); err != nil {
		return err
	}
	ev = core.NewLinkedList(f) // a fresh evaluator: tracking resets
	return ev.Add(t)           // ok: this is the new value
}

func fieldReceivers(t tuple.Tuple) {
	var h struct{ ev core.Evaluator }
	h.ev = core.NewLinkedList(aggregate.For(aggregate.Count))
	_, _ = h.ev.Finish()
	_ = h.ev.Add(t) // want `Add called on h\.ev after Finish`
}

func liveReuseAfterClose(ev *core.LiveEvaluator, t tuple.Tuple) error {
	if err := ev.Add(t); err != nil { // ok: Add before Close
		return err
	}
	if err := ev.Close(); err != nil {
		return err
	}
	return ev.Add(t) // want `Add called on ev after Close`
}

func liveDoubleClose(ev *core.LiveEvaluator) {
	_ = ev.Close()
	_ = ev.Close() // want `Close called twice on ev`
}

func liveSnapshotAfterClose(ev *core.LiveEvaluator) (*core.LiveSnapshot, error) {
	_ = ev.Close()
	return ev.Snapshot() // want `Snapshot called on ev after Close`
}

func liveBatchAfterClose(ev *core.LiveEvaluator, ts []tuple.Tuple) error {
	_ = ev.Close()
	return ev.AddBatch(ts) // want `AddBatch called on ev after Close`
}

func liveStatsAfterClose(ev *core.LiveEvaluator) core.Stats {
	_ = ev.Close()
	return ev.Stats() // ok by default: reading the final PeakNodes is the reporting pattern
}

func liveDeferredClose(t tuple.Tuple) error {
	ev := core.NewLive(core.LiveOptions{})
	defer ev.Close() // ok: a deferred Close runs at exit, after every use below
	return ev.Add(t)
}

func liveReassigned(t tuple.Tuple) error {
	ev := core.NewLive(core.LiveOptions{})
	_ = ev.Close()
	ev = core.NewLive(core.LiveOptions{}) // a fresh evaluator: tracking resets
	return ev.Add(t)                      // ok: this is the new value
}

func indexRangeAfterClose(idx *core.IntervalIndex, f aggregate.Func, w interval.Interval) (*core.Result, error) {
	if _, err := idx.Range(f, w); err != nil { // ok: lookup before Close
		return nil, err
	}
	_ = idx.Close()
	return idx.Range(f, w) // want `Range called on idx after Close`
}

func indexDoubleClose(idx *core.IntervalIndex) {
	_ = idx.Close()
	_ = idx.Close() // want `Close called twice on idx`
}

func indexMarshalAfterClose(idx *core.IntervalIndex) ([]byte, error) {
	_ = idx.Close()
	return idx.MarshalBinary() // want `MarshalBinary called on idx after Close`
}

func indexDeferredClose(ts []tuple.Tuple, f aggregate.Func) (*core.Result, error) {
	idx, err := core.NewIntervalIndex(ts)
	if err != nil {
		return nil, err
	}
	defer idx.Close() // ok: a deferred Close runs at exit, after every use below
	return idx.Result(f)
}

func cacheGetAfterClose(rc *core.ResultCache, k core.CacheKey) (*core.Result, bool) {
	if r, ok := rc.Get(k); ok { // ok: Get before Close
		return r, true
	}
	_ = rc.Close()
	return rc.Get(k) // want `Get called on rc after Close`
}

func cachePutAfterClose(rc *core.ResultCache, k core.CacheKey, r *core.Result) int {
	_ = rc.Close()
	return rc.Put(k, r) // want `Put called on rc after Close`
}

func cacheDoubleClose(rc *core.ResultCache) {
	_ = rc.Close()
	_ = rc.Close() // want `Close called twice on rc`
}

func cacheStatsAfterClose(rc *core.ResultCache) core.CacheStats {
	_ = rc.Close()
	return rc.Stats() // ok by default: reading the final counters is the reporting pattern
}

func cacheReassigned(k core.CacheKey) (*core.Result, bool) {
	rc := core.NewResultCache(4)
	_ = rc.Close()
	rc = core.NewResultCache(4) // a fresh cache: tracking resets
	defer rc.Close()
	return rc.Get(k) // ok: this is the new value
}

func separateFlows(ev core.Evaluator, t tuple.Tuple) {
	done := make(chan struct{})
	go func() {
		// A nested function body is its own flow: the flow-insensitive
		// check cannot order it against the outer Finish.
		_ = ev.Add(t) // ok
		close(done)
	}()
	<-done
	_, _ = ev.Finish()
}
