package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestObserverLifecycle(t *testing.T) {
	slowBuf := &strings.Builder{}
	o := NewObserver(4, NewSlowLog(slowBuf, 0)) // threshold 0: log everything
	tr := o.StartQuery("SELECT COUNT(Name) FROM Employed")
	if tr == nil {
		t.Fatal("StartQuery returned nil on a live observer")
	}
	if tr.Sink() == nil {
		t.Fatal("trace must expose the metrics sink")
	}
	sp := tr.StartSpan("plan")
	sp.End()
	tr.SetPlan("k-ordered-tree", 1, "k-ordered-tree(k=1) — relation is sorted")
	tr.AddStats(10, 7, 9, 2)
	tr.AddStats(10, 7, 12, 0)
	tr.SetGroups(2)
	o.FinishQuery(tr, nil)

	if tr.Duration <= 0 {
		t.Error("FinishQuery must stamp a positive duration")
	}
	if tr.Stats != (EvalCounters{Tuples: 20, LiveNodes: 14, PeakNodes: 12, Collected: 2}) {
		t.Errorf("stats snapshot = %+v", tr.Stats)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "plan" {
		t.Errorf("spans = %+v", tr.Spans)
	}

	got := o.Traces.Snapshot()
	if len(got) != 1 || got[0] != tr {
		t.Errorf("trace ring = %+v", got)
	}
	var entry struct {
		Query     string `json:"query"`
		Algorithm string `json:"algorithm"`
	}
	if err := json.Unmarshal([]byte(slowBuf.String()), &entry); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, slowBuf.String())
	}
	if entry.Algorithm != "k-ordered-tree" {
		t.Errorf("slow log entry = %+v", entry)
	}

	var b strings.Builder
	if err := o.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`tempagg_queries_total{algorithm="k-ordered-tree",status="ok"} 1`,
		`tempagg_slow_queries_total 1`,
		`tempagg_query_duration_seconds_count{algorithm="k-ordered-tree"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestFinishQueryError(t *testing.T) {
	o := NewObserver(2, nil)
	tr := o.StartQuery("SELECT BOGUS")
	o.FinishQuery(tr, errors.New("query: parse error"))
	if tr.Err == "" {
		t.Error("error must be recorded on the trace")
	}
	var b strings.Builder
	if err := o.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// A query that fails before planning is counted under algorithm "none".
	if want := `tempagg_queries_total{algorithm="none",status="error"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestNilObserverIsFullyDisabled(t *testing.T) {
	var o *Observer
	tr := o.StartQuery("SELECT 1")
	if tr != nil {
		t.Fatal("nil observer must yield a nil trace")
	}
	sp := tr.StartSpan("plan")
	sp.End()
	tr.SetPlan("x", 0, "p")
	tr.AddStats(1, 1, 1, 1)
	tr.SetGroups(1)
	if tr.Sink() != nil {
		t.Error("nil trace must have a nil sink")
	}
	o.FinishQuery(tr, nil)
	if o.Registry() != nil {
		t.Error("nil observer must have a nil registry")
	}
}

func TestTraceBufferEviction(t *testing.T) {
	b := NewTraceBuffer(3)
	for i := 1; i <= 5; i++ {
		b.Push(&QueryTrace{ID: int64(i)})
	}
	got := b.Snapshot()
	if len(got) != 3 || got[0].ID != 3 || got[2].ID != 5 {
		ids := make([]int64, len(got))
		for i, tr := range got {
			ids[i] = tr.ID
		}
		t.Errorf("ring ids = %v, want [3 4 5]", ids)
	}
}

func TestSlowLogThreshold(t *testing.T) {
	var buf strings.Builder
	l := NewSlowLog(&buf, 50*time.Millisecond)
	fast := &QueryTrace{Query: "fast", Duration: time.Millisecond}
	if logged, err := l.Record(fast); logged || err != nil {
		t.Errorf("fast query logged=%v err=%v", logged, err)
	}
	slow := &QueryTrace{Query: "slow", Duration: time.Second}
	if logged, err := l.Record(slow); !logged || err != nil {
		t.Errorf("slow query logged=%v err=%v", logged, err)
	}
	if !strings.Contains(buf.String(), `"query":"slow"`) {
		t.Errorf("slow log = %q", buf.String())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestSlowLogWriteFailureBecomesCounter(t *testing.T) {
	o := NewObserver(1, NewSlowLog(failWriter{}, 0))
	tr := o.StartQuery("SELECT COUNT(Name) FROM Employed")
	tr.SetPlan("linked-list", 0, "forced")
	o.FinishQuery(tr, nil)
	var b strings.Builder
	if err := o.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tempagg_slow_queries_total 1",
		"tempagg_slowlog_write_errors_total 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestHTTPHandlers(t *testing.T) {
	o := NewObserver(4, nil)
	tr := o.StartQuery("SELECT COUNT(Name) FROM Employed")
	tr.SetPlan("aggregation-tree", 0, "unsorted relation")
	o.FinishQuery(tr, nil)

	rec := httptest.NewRecorder()
	MetricsHandler(o.Registry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "tempagg_queries_total") {
		t.Errorf("/metrics: code=%d body=%q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}

	rec = httptest.NewRecorder()
	TracesHandler(o.Traces).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces: code=%d", rec.Code)
	}
	var traces []*QueryTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("/debug/traces is not JSON: %v", err)
	}
	if len(traces) != 1 || traces[0].Algorithm != "aggregation-tree" {
		t.Errorf("traces = %+v", traces)
	}

	rec = httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Errorf("disabled /metrics: code=%d, want 404", rec.Code)
	}
}

func TestMetricsSinkRoundTrip(t *testing.T) {
	m := NewMetrics(NewRegistry())
	var s Sink = m
	es := s.Evaluator("k-ordered-tree")
	es.NodesAllocated(1)
	es.TuplesProcessed(5)
	es.NodesAllocated(8)
	es.NodesCollected(3)
	es.PeakNodes(6)
	es.PeakNodes(4) // lower peak must not regress the gauge
	es.GCThreshold(17)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`tempagg_tuples_processed_total{algorithm="k-ordered-tree"} 5`,
		`tempagg_tree_nodes_allocated_total{algorithm="k-ordered-tree"} 9`,
		`tempagg_tree_nodes_collected_total{algorithm="k-ordered-tree"} 3`,
		`tempagg_tree_nodes_peak{algorithm="k-ordered-tree"} 6`,
		`tempagg_gc_threshold_time{algorithm="k-ordered-tree"} 17`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}
