package lint

import (
	"go/ast"
	"go/types"
)

// LockCopy flags by-value copies of structs that hold a lock or live
// structure state: value receivers, by-value parameters and results,
// assignments, call arguments, returns, and range values. A copied
// sync.Mutex is two independent locks guarding one map — exactly the
// failure mode the shared catalog and server would hit under concurrent
// ingest + query. Evaluator structs embed a core noCopy marker (a
// zero-size type with pointer Lock/Unlock methods) so a copied aggregation
// tree — two owners garbage-collecting one node pool — is caught the same
// way. The detector keys off "has a pointer-receiver Lock and Unlock", the
// same convention go vet's copylocks uses, so any future type can opt in
// by embedding noCopy.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc: "flag by-value copies of structs holding mutexes or live tree " +
		"state (anything with pointer-receiver Lock/Unlock, incl. core.noCopy)",
	Run: runLockCopy,
}

func runLockCopy(pass *Pass) error {
	cache := map[types.Type]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldList(pass, cache, n.Recv, "receiver")
				}
				checkFuncType(pass, cache, n.Type)
			case *ast.FuncLit:
				checkFuncType(pass, cache, n.Type)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to _ discards the value; nothing is copied
					// anywhere it could be locked.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					checkCopyExpr(pass, cache, rhs, "assignment copies")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopyExpr(pass, cache, v, "variable initialization copies")
				}
			case *ast.CallExpr:
				if isConversion(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					checkCopyExpr(pass, cache, arg, "call passes")
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopyExpr(pass, cache, r, "return copies")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := rangeValueType(pass, n.Value); t != nil && containsLock(cache, t) {
						pass.Reportf(n.Value.Pos(),
							"range value copies lock-holding type %s by value; iterate by index or pointer",
							types.TypeString(t, relativeTo(pass.Pkg)))
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkFuncType(pass *Pass, cache map[types.Type]bool, ft *ast.FuncType) {
	checkFieldList(pass, cache, ft.Params, "parameter")
	checkFieldList(pass, cache, ft.Results, "result")
}

func checkFieldList(pass *Pass, cache map[types.Type]bool, fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
			continue
		}
		if containsLock(cache, t) {
			pass.Reportf(field.Type.Pos(),
				"%s passes lock-holding type %s by value; use a pointer",
				what, types.TypeString(t, relativeTo(pass.Pkg)))
		}
	}
}

// checkCopyExpr flags expressions that copy an existing lock-holding value:
// a variable, a field or element of one, or a pointer dereference.
// Composite literals and function results are transfers of a fresh value,
// not copies of a live one, and stay legal.
func checkCopyExpr(pass *Pass, cache map[types.Type]bool, e ast.Expr, what string) {
	if !isCopySource(e) {
		return
	}
	t := exprType(pass, e)
	if t == nil || !containsLock(cache, t) {
		return
	}
	pass.Reportf(e.Pos(), "%s lock-holding type %s by value; use a pointer",
		what, types.TypeString(t, relativeTo(pass.Pkg)))
}

func isCopySource(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "_" && e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	}
	return false
}

// rangeValueType resolves the type of a range statement's value variable;
// a `:=`-defined identifier lives in Defs rather than Types.
func rangeValueType(pass *Pass, e ast.Expr) types.Type {
	if t := exprType(pass, e); t != nil {
		return t
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return nil
	}
	if _, isPtr := types.Unalias(obj.Type()).(*types.Pointer); isPtr {
		return nil
	}
	return obj.Type()
}

func exprType(pass *Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isPtr := types.Unalias(tv.Type).(*types.Pointer); isPtr {
		return nil
	}
	return tv.Type
}

func isConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// containsLock reports whether t directly is, or transitively contains (via
// struct fields and array elements), a type whose pointer method set has
// Lock and Unlock.
func containsLock(cache map[types.Type]bool, t types.Type) bool {
	t = types.Unalias(t)
	if v, ok := cache[t]; ok {
		return v
	}
	cache[t] = false // break cycles
	result := false
	switch u := t.(type) {
	case *types.Named:
		result = hasPointerLock(u) || containsLock(cache, u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(cache, u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = containsLock(cache, u.Elem())
	}
	cache[t] = result
	return result
}

// hasPointerLock reports whether *T has niladic Lock and Unlock methods —
// sync.Mutex, sync.RWMutex, sync.WaitGroup via embedding, or a noCopy
// marker.
func hasPointerLock(named *types.Named) bool {
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	return hasNiladicMethod(ms, "Lock") && hasNiladicMethod(ms, "Unlock")
}

func hasNiladicMethod(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != name {
			continue
		}
		sig := fn.Type().(*types.Signature)
		return sig.Params().Len() == 0 && sig.Results().Len() == 0
	}
	return false
}

// relativeTo qualifies type names relative to the package under analysis.
func relativeTo(pkg *types.Package) types.Qualifier {
	return func(other *types.Package) string {
		if other == pkg {
			return ""
		}
		return other.Name()
	}
}
