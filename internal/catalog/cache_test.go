// Tests for the S37 catalog caches: the versioned result cache (hit on
// repeat, structural invalidation when the file fingerprint moves) and the
// resident interval-index layer (plan choice, equivalence with the sweep).
package catalog

import (
	"path/filepath"
	"strings"
	"testing"

	"tempagg/internal/relation"
	"tempagg/internal/workload"
)

// The synthetic relation spans workload.DefaultLifespan (1M instants), so
// the window covers a meaty slice of it.
const cacheTestQuery = "SELECT COUNT(Name), SUM(Salary) FROM Synth VALID OVERLAPS 1000 900000"

// TestResultCacheServesAndInvalidates: the second identical query is a
// cache hit with the same answer; rewriting the relation file moves the
// fingerprint, so the third query re-evaluates against the new contents.
func TestResultCacheServesAndInvalidates(t *testing.T) {
	dir := newCatalogDir(t)
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableResultCache(8)

	cold, err := c.Query(cacheTestQuery, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Plan.Cached {
		t.Fatalf("first query served from an empty cache: %+v", cold.Plan)
	}
	warm, err := c.Query(cacheTestQuery, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Plan.Cached {
		t.Fatalf("repeat query missed the cache: %+v", warm.Plan)
	}
	if !strings.Contains(warm.Plan.Reason, "result cache hit at version") {
		t.Fatalf("cached plan reason = %q", warm.Plan.Reason)
	}
	for i := range cold.Groups[0].Results {
		if !warm.Groups[0].Results[i].Equal(cold.Groups[0].Results[i]) {
			t.Fatalf("cached aggregate %d differs from the evaluated one", i)
		}
	}
	// The core cache counts per-aggregate probes: the cold query misses on
	// its first aggregate and short-circuits; the warm query hits both.
	if st := c.ResultCacheStats(); st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("cache stats after warm read = %+v", st)
	}

	// Rewrite the file with different contents (different tuple count, so
	// the size component of the fingerprint moves even on coarse mtimes).
	synth, err := workload.Generate(workload.Config{Tuples: 700, Order: workload.Random, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteFile(filepath.Join(dir, "Synth.rel"), synth); err != nil {
		t.Fatal(err)
	}
	after, err := c.Query(cacheTestQuery, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Plan.Cached {
		t.Fatalf("query after rewrite served stale cache entry: %+v", after.Plan)
	}
	if after.Groups[0].Results[0].Equal(cold.Groups[0].Results[0]) {
		t.Fatal("rewritten relation produced the old answer — stale read")
	}
}

// TestRangeIndexPlanMatchesSweep: with the index layer on, an eligible
// range query plans as index-lookup and its rows match the sweep's.
func TestRangeIndexPlanMatchesSweep(t *testing.T) {
	dir := newCatalogDir(t)
	plain, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Query(cacheTestQuery, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}

	indexed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	indexed.EnableRangeIndex()
	got, err := indexed.Query(cacheTestQuery, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Plan.UseIndex || got.Plan.Algorithm() != "index-lookup" {
		t.Fatalf("indexed catalog picked %q (%+v), want index-lookup", got.Plan.Algorithm(), got.Plan)
	}
	for i := range want.Groups[0].Results {
		if !got.Groups[0].Results[i].Equal(want.Groups[0].Results[i]) {
			t.Fatalf("index aggregate %d differs from sweep", i)
		}
	}
	// The resident index survives for the next query; same answer again.
	again, err := indexed.Query(cacheTestQuery, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Plan.UseIndex {
		t.Fatalf("second indexed query lost the index plan: %+v", again.Plan)
	}

	// An ineligible query (WHERE predicate) must fall back to scanning even
	// with the index layer on.
	pred, err := indexed.Query(
		"SELECT COUNT(Name) FROM Synth VALID OVERLAPS 1000 900000 WHERE Salary >= 0",
		relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Plan.UseIndex {
		t.Fatalf("WHERE query planned through the index: %+v", pred.Plan)
	}
}

// TestUsingIndexBuildsOnTheFly: USING INDEX without a resident index must
// still work — the executor builds a transient index for the query.
func TestUsingIndexBuildsOnTheFly(t *testing.T) {
	dir := newCatalogDir(t)
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Query(cacheTestQuery, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(cacheTestQuery+" USING INDEX", relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Plan.UseIndex {
		t.Fatalf("USING INDEX ignored: %+v", got.Plan)
	}
	for i := range want.Groups[0].Results {
		if !got.Groups[0].Results[i].Equal(want.Groups[0].Results[i]) {
			t.Fatalf("USING INDEX aggregate %d differs from sweep", i)
		}
	}
	// USING INDEX on an ineligible query is a parse-time error, not a
	// silent fallback.
	if _, err := c.Query(
		"SELECT COUNT(Name) FROM Synth USING INDEX WHERE Salary >= 0",
		relation.ScanOptions{}); err == nil {
		t.Fatal("USING INDEX with WHERE succeeded, want error")
	}
}
