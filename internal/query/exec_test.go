package query

import (
	"strings"
	"testing"

	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/relation"
)

func execute(t *testing.T, sql string, rel *relation.Relation) *QueryResult {
	t.Helper()
	qr, err := Run(sql, rel, nil)
	if err != nil {
		t.Fatalf("Run(%q): %v", sql, err)
	}
	return qr
}

func TestExecutePaperQueryTable1(t *testing.T) {
	qr := execute(t, "SELECT COUNT(Name) FROM Employed", relation.Employed())
	if len(qr.Groups) != 1 {
		t.Fatalf("%d groups, want 1", len(qr.Groups))
	}
	res := qr.Groups[0].Result
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		count int64
		iv    interval.Interval
	}{
		{0, interval.MustNew(0, 6)},
		{1, interval.MustNew(7, 7)},
		{2, interval.MustNew(8, 12)},
		{1, interval.MustNew(13, 17)},
		{3, interval.MustNew(18, 20)},
		{2, interval.MustNew(21, 21)},
		{1, interval.MustNew(22, interval.Forever)},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows, want %d:\n%s", len(res.Rows), len(want), res)
	}
	for i, w := range want {
		if res.Rows[i].Interval != w.iv || res.Value(i).Int != w.count {
			t.Errorf("row %d = %v/%d, want %v/%d",
				i, res.Rows[i].Interval, res.Value(i).Int, w.iv, w.count)
		}
	}
}

func TestExecuteGroupByName(t *testing.T) {
	qr := execute(t, "SELECT Name, MAX(Salary) FROM Employed GROUP BY Name", relation.Employed())
	if len(qr.Groups) != 3 {
		t.Fatalf("%d groups, want 3 (Karen, Nathan, Rich)", len(qr.Groups))
	}
	if qr.Groups[0].Key != "Karen" || qr.Groups[1].Key != "Nathan" || qr.Groups[2].Key != "Rich" {
		t.Fatalf("group keys = %v %v %v", qr.Groups[0].Key, qr.Groups[1].Key, qr.Groups[2].Key)
	}
	// Nathan's salary changes from 35 to 37 across his two stints.
	nathan := qr.Groups[1].Result
	if v, ok := nathan.At(10); !ok || v.Int != 35 {
		t.Errorf("Nathan MAX at 10 = %v, want 35", v)
	}
	if v, ok := nathan.At(20); !ok || v.Int != 37 {
		t.Errorf("Nathan MAX at 20 = %v, want 37", v)
	}
	if v, ok := nathan.At(15); !ok || !v.Null {
		t.Errorf("Nathan MAX at 15 = %v, want null (unemployed [13,17])", v)
	}
}

func TestExecuteWhereFilter(t *testing.T) {
	qr := execute(t, "SELECT COUNT(Name) FROM Employed WHERE Salary > 36", relation.Employed())
	res := qr.Groups[0].Result
	// Only Rich (40), Karen (45), Nathan's 37 stint qualify.
	if v, _ := res.At(10); v.Int != 1 { // Karen only
		t.Errorf("count at 10 = %v, want 1", v)
	}
	if v, _ := res.At(19); v.Int != 3 {
		t.Errorf("count at 19 = %v, want 3", v)
	}
	qr = execute(t, "SELECT COUNT(Name) FROM Employed WHERE Name = 'Nathan'", relation.Employed())
	res = qr.Groups[0].Result
	if v, _ := res.At(10); v.Int != 1 {
		t.Errorf("Nathan count at 10 = %v, want 1", v)
	}
	if v, _ := res.At(30); v.Int != 0 {
		t.Errorf("Nathan count at 30 = %v, want 0", v)
	}
}

func TestExecuteWhereOperators(t *testing.T) {
	rel := relation.Employed()
	for sql, wantAt18 := range map[string]int64{
		"SELECT COUNT(Name) FROM Employed WHERE Salary < 40":  1, // Nathan 37 stint
		"SELECT COUNT(Name) FROM Employed WHERE Salary <= 40": 2, // + Rich
		"SELECT COUNT(Name) FROM Employed WHERE Salary <> 45": 2, // all but Karen
		"SELECT COUNT(Name) FROM Employed WHERE Stop >= 21":   2, // Rich, Nathan2
		"SELECT COUNT(Name) FROM Employed WHERE Start = 18":   2,
	} {
		qr := execute(t, sql, rel)
		if v, _ := qr.Groups[0].Result.At(18); v.Int != wantAt18 {
			t.Errorf("%s: count at 18 = %d, want %d", sql, v.Int, wantAt18)
		}
	}
}

func TestExecuteSpanGrouping(t *testing.T) {
	rel := relation.FromTuples("R", relation.Employed().Tuples[1:3]) // Karen [8,20], Nathan [7,12]
	qr := execute(t, "SELECT COUNT(Name) FROM R GROUP BY SPAN 10", rel)
	res := qr.Groups[0].Result
	if err := res.ValidatePartition(0, 29); err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 2, 1} // both overlap [0,9] and [10,19]; Karen reaches [20,29]
	for i, w := range want {
		if got := res.Value(i).Int; got != w {
			t.Errorf("span %d count = %d, want %d", i, got, w)
		}
	}
}

func TestExecuteSpanRejectsOpenEnded(t *testing.T) {
	if _, err := Run("SELECT COUNT(Name) FROM Employed GROUP BY SPAN 10",
		relation.Employed(), nil); err == nil {
		t.Fatal("span grouping over an open-ended tuple must fail")
	}
}

func TestExecuteUsingEachAlgorithm(t *testing.T) {
	rel := relation.Employed()
	base := execute(t, "SELECT SUM(Salary) FROM Employed", rel)
	for _, using := range []string{"LIST", "TREE", "BTREE", "KTREE 1", "KTREE 4", "TUMA"} {
		qr := execute(t, "SELECT SUM(Salary) FROM Employed USING "+using, rel)
		if !qr.Groups[0].Result.Equal(base.Groups[0].Result) {
			t.Errorf("USING %s: result differs from default plan", using)
		}
	}
}

func TestExecuteWrongRelationName(t *testing.T) {
	if _, err := Run("SELECT COUNT(Name) FROM Nonesuch", relation.Employed(), nil); err == nil {
		t.Fatal("expected unknown-relation error")
	}
}

func TestExecuteParseErrorPropagates(t *testing.T) {
	if _, err := Run("SELEC", relation.Employed(), nil); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestExecuteEmptyGroupByOnEmptyRelation(t *testing.T) {
	rel := relation.New("Empty")
	qr := execute(t, "SELECT Name, COUNT(Name) FROM Empty GROUP BY Name", rel)
	if len(qr.Groups) != 0 {
		t.Fatalf("%d groups over empty relation, want 0", len(qr.Groups))
	}
	qr = execute(t, "SELECT COUNT(Name) FROM Empty", rel)
	if len(qr.Groups) != 1 || len(qr.Groups[0].Result.Rows) != 1 {
		t.Fatal("ungrouped query over empty relation must yield the single empty constant interval")
	}
}

func TestExecuteResultString(t *testing.T) {
	qr := execute(t, "SELECT Name, COUNT(Name) FROM Employed GROUP BY Name", relation.Employed())
	s := qr.String()
	for _, want := range []string{"plan:", "group Karen", "group Nathan", "group Rich"} {
		if !strings.Contains(s, want) {
			t.Errorf("result output missing %q:\n%s", want, s)
		}
	}
}

func TestExecuteHonoursExplicitInfo(t *testing.T) {
	rel := relation.Employed()
	info := &RelationInfo{Tuples: rel.Len(), Sorted: false, KBound: rel.Len()}
	qr, err := Run("SELECT COUNT(Name) FROM Employed", rel, info)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Plan.Spec.Algorithm != core.KOrderedTree || qr.Plan.Spec.K != rel.Len() {
		t.Fatalf("plan = %v, want ktree with declared k", qr.Plan)
	}
	if err := qr.Groups[0].Result.Validate(); err != nil {
		t.Fatal(err)
	}
}
