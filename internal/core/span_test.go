package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func TestGroupBySpanBasic(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	ts := []tuple.Tuple{
		mustTuple(t, "a", 1, 0, 14),  // spans 0 and 1
		mustTuple(t, "b", 1, 10, 12), // span 1
		mustTuple(t, "c", 1, 25, 25), // span 2
	}
	res, err := GroupBySpan(f, ts, 10, interval.MustNew(0, 29))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ValidatePartition(0, 29); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 1}
	for i, w := range want {
		if got := res.Value(i).Int; got != w {
			t.Errorf("span %d: count %d, want %d", i, got, w)
		}
	}
}

func TestGroupBySpanClipsFinalSpan(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	res, err := GroupBySpan(f, nil, 10, interval.MustNew(0, 24))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d spans, want 3", len(res.Rows))
	}
	if res.Rows[2].Interval != interval.MustNew(20, 24) {
		t.Fatalf("final span = %v, want [20,24]", res.Rows[2].Interval)
	}
}

func TestGroupBySpanOffsetWindow(t *testing.T) {
	f := aggregate.For(aggregate.Sum)
	ts := []tuple.Tuple{
		mustTuple(t, "a", 5, 95, 105),  // clipped into window at 100
		mustTuple(t, "b", 7, 110, 400), // clipped at window end
	}
	res, err := GroupBySpan(f, ts, 50, interval.MustNew(100, 199))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ValidatePartition(100, 199); err != nil {
		t.Fatal(err)
	}
	if got := res.Value(0).Int; got != 12 { // both tuples overlap [100,149]
		t.Errorf("span 0 sum = %d, want 12", got)
	}
	if got := res.Value(1).Int; got != 7 { // only b overlaps [150,199]
		t.Errorf("span 1 sum = %d, want 7", got)
	}
}

func TestGroupBySpanErrors(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	if _, err := GroupBySpan(f, nil, 0, interval.MustNew(0, 9)); err == nil {
		t.Error("span 0 must be rejected")
	}
	if _, err := GroupBySpan(f, nil, -3, interval.MustNew(0, 9)); err == nil {
		t.Error("negative span must be rejected")
	}
	if _, err := GroupBySpan(f, nil, 10, interval.Universe()); err == nil {
		t.Error("infinite window must be rejected")
	}
	//tempagglint:ignore intervalbounds the test needs an invalid window to exercise rejection
	if _, err := GroupBySpan(f, nil, 10, interval.Interval{Start: 9, End: 3}); err == nil {
		t.Error("invalid window must be rejected")
	}
}

// TestGroupBySpanMatchesDefinition: each span's aggregate equals the
// aggregate over tuples overlapping the span — checked by brute force.
func TestGroupBySpanMatchesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		prop := func() bool {
			ts := randomTuples(r, r.Intn(50), 300)
			span := int64(1 + r.Intn(60))
			window := interval.MustNew(0, 299)
			res, err := GroupBySpan(f, ts, span, window)
			if err != nil {
				return false
			}
			if res.ValidatePartition(0, 299) != nil {
				return false
			}
			for i, rw := range res.Rows {
				want := f.Zero()
				for _, tu := range ts {
					if tu.Valid.Overlaps(rw.Interval) {
						want = f.Add(want, tu.Value)
					}
				}
				if !f.StateEqual(want, rw.State) {
					t.Logf("span %d %v mismatch", i, rw.Interval)
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// TestGroupBySpanFewerBucketsThanConstantIntervals demonstrates the paper's
// future-work motivation (§7): with coarse spans the result has far fewer
// rows than the instant-grouped result.
func TestGroupBySpanFewerBucketsThanConstantIntervals(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := aggregate.For(aggregate.Count)
	ts := randomTuples(r, 500, 10000)
	instant := Reference(f, ts)
	spans, err := GroupBySpan(f, ts, 1000, interval.MustNew(0, 19999))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans.Rows) >= len(instant.Rows)/10 {
		t.Fatalf("span rows %d not ≪ instant rows %d", len(spans.Rows), len(instant.Rows))
	}
}
