package workload

import (
	"testing"

	"tempagg/internal/interval"
	"tempagg/internal/order"
)

func TestGenerateSizeAndLifespan(t *testing.T) {
	rel, err := Generate(Config{Tuples: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2000 {
		t.Fatalf("generated %d tuples, want 2000", rel.Len())
	}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	span, ok := rel.Lifespan()
	if !ok {
		t.Fatal("no lifespan")
	}
	if span.Start < 0 || span.End >= DefaultLifespan {
		t.Fatalf("tuples escape the lifespan: %v", span)
	}
}

func TestGenerateShortLivedLengths(t *testing.T) {
	rel, err := Generate(Config{Tuples: 3000, LongLivedPct: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range rel.Tuples {
		d := tu.Valid.Duration()
		if d < 1 || d > DefaultShortMax {
			t.Fatalf("short-lived tuple with duration %d", d)
		}
	}
}

func TestGenerateLongLivedLengths(t *testing.T) {
	rel, err := Generate(Config{Tuples: 3000, LongLivedPct: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lo := interval.Time(DefaultLongMinFrac * float64(DefaultLifespan))
	hi := interval.Time(DefaultLongMaxFrac * float64(DefaultLifespan))
	for _, tu := range rel.Tuples {
		d := tu.Valid.Duration()
		if d < lo || d > hi {
			t.Fatalf("long-lived tuple with duration %d outside [%d,%d]", d, lo, hi)
		}
	}
}

func TestGenerateMixRoughlyMatchesPct(t *testing.T) {
	rel, err := Generate(Config{Tuples: 5000, LongLivedPct: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	long := 0
	for _, tu := range rel.Tuples {
		if tu.Valid.Duration() > DefaultShortMax {
			long++
		}
	}
	frac := float64(long) / float64(rel.Len())
	if frac < 0.39 || frac > 0.41 {
		t.Fatalf("long-lived fraction %.3f, want 0.40", frac)
	}
}

func TestGenerateOrders(t *testing.T) {
	base := Config{Tuples: 4000, Seed: 5}

	randomCfg := base
	rel, err := Generate(randomCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel.IsSorted() {
		t.Fatal("random order produced a sorted relation")
	}

	sortedCfg := base
	sortedCfg.Order = Sorted
	rel, err = Generate(sortedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.IsSorted() {
		t.Fatal("sorted order not sorted")
	}

	kCfg := base
	kCfg.Order = KOrdered
	kCfg.K = 40
	kCfg.KPct = 0.08
	rel, err = Generate(kCfg)
	if err != nil {
		t.Fatal(err)
	}
	if order.KOrderedness(rel.Tuples) > 40 {
		t.Fatalf("relation is %d-ordered, want <= 40", order.KOrderedness(rel.Tuples))
	}
	pct, err := order.KOrderedPercentage(rel.Tuples, 40)
	if err != nil {
		t.Fatal(err)
	}
	if pct < 0.07 || pct > 0.09 {
		t.Fatalf("k-ordered-percentage %.4f not near 0.08", pct)
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a, err := Generate(Config{Tuples: 500, LongLivedPct: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Tuples: 500, LongLivedPct: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatal("same seed produced different relations")
		}
	}
	c, err := Generate(Config{Tuples: 500, LongLivedPct: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Tuples {
		if a.Tuples[i] != c.Tuples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical relations")
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := map[string]Config{
		"negative size": {Tuples: -1},
		"bad pct":       {Tuples: 10, LongLivedPct: 101},
		"kordered k=0":  {Tuples: 10, Order: KOrdered},
		"unknown order": {Tuples: 10, Order: Order(9)},
		"tiny lifespan": {Tuples: 10, Lifespan: 1},
	}
	for name, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestGenerateEmpty(t *testing.T) {
	rel, err := Generate(Config{Tuples: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Fatalf("empty config generated %d tuples", rel.Len())
	}
}

func TestTable3Parameters(t *testing.T) {
	sizes := Table3Sizes()
	if len(sizes) != 7 || sizes[0] != 1024 || sizes[6] != 65536 {
		t.Fatalf("Table3Sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Fatal("sizes must double")
		}
	}
	if got := Table3LongLivedPcts(); len(got) != 3 || got[0] != 0 || got[2] != 80 {
		t.Fatalf("Table3LongLivedPcts = %v", got)
	}
	if got := Table3KValues(); len(got) != 3 || got[0] != 4 || got[2] != 400 {
		t.Fatalf("Table3KValues = %v", got)
	}
	if got := Table3KPcts(); len(got) != 3 || got[0] != 0.02 || got[2] != 0.14 {
		t.Fatalf("Table3KPcts = %v", got)
	}
}

func TestOrderString(t *testing.T) {
	if Random.String() != "random" || Sorted.String() != "sorted" || KOrdered.String() != "k-ordered" {
		t.Fatal("order names wrong")
	}
	if Order(9).String() != "Order(9)" {
		t.Fatal("unknown order name wrong")
	}
}
