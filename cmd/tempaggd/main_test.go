package main

import (
	"io"
	"net"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"tempagg"
	"tempagg/internal/catalog"
	"tempagg/internal/obs"
	"tempagg/internal/server"
)

func TestClientModeAgainstServer(t *testing.T) {
	dir := t.TempDir()
	if err := tempagg.WriteRelation(filepath.Join(dir, "Employed.rel"), tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cat)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	// Let the accept loop spin up.
	time.Sleep(10 * time.Millisecond)

	var b strings.Builder
	err = run([]string{"-connect", lis.Addr().String(),
		"-query", "SELECT COUNT(Name) FROM Employed"}, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"ok":true`) {
		t.Fatalf("client output:\n%s", b.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b, nil); err == nil {
		t.Error("no mode must fail")
	}
	if err := run([]string{"-listen", ":0", "-connect", "x"}, &b, nil); err == nil {
		t.Error("both modes must fail")
	}
	if err := run([]string{"-listen", ":0"}, &b, nil); err == nil {
		t.Error("listen without -db must fail")
	}
	if err := run([]string{"-connect", "127.0.0.1:1"}, &b, nil); err == nil {
		t.Error("connect without -query must fail")
	}
	if err := run([]string{"-connect", "127.0.0.1:1", "-query", "x"}, &b, nil); err == nil {
		t.Error("unreachable server must fail")
	}
	if err := run([]string{"-listen", ":0", "-db", "/nonexistent"}, &b, nil); err == nil {
		t.Error("missing catalog must fail")
	}
}

// TestObsSmoke is the CI obs-smoke gate: boot the daemon with its admin
// surface, run one query, and fail if /metrics or /debug/pprof/heap is
// broken or the advertised counters stayed at zero.
func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	if err := tempagg.WriteRelation(filepath.Join(dir, "Employed.rel"), tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	type addrs struct{ query, admin string }
	up := make(chan addrs, 1)
	done := make(chan error, 1)
	cfg := serveConfig{db: dir, listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0",
		slowQuery: time.Nanosecond, traces: 16}
	var out strings.Builder
	go func() {
		done <- serve(cfg, &out, func(q, a string) { up <- addrs{q, a} }, stop)
	}()
	var a addrs
	select {
	case a = <-up:
	case err := <-done:
		t.Fatalf("daemon died before ready: %v\n%s", err, out.String())
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never came up")
	}
	defer func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	c, err := server.Dial(a.query)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query("SELECT COUNT(Name) FROM Employed")
	if err != nil || !resp.OK {
		t.Fatalf("query failed: %+v, %v", resp, err)
	}

	get := func(path string) string {
		r, err := http.Get("http://" + a.admin + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer r.Body.Close()
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", path, r.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, name := range []string{
		obs.MetricTuplesProcessed,
		obs.MetricNodesAllocated,
		obs.MetricQueryDuration + "_bucket",
	} {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{[^}]*\} ([0-9.e+-]+)$`)
		m := re.FindAllStringSubmatch(metrics, -1)
		if len(m) == 0 {
			t.Errorf("%s missing from /metrics:\n%s", name, metrics)
			continue
		}
		nonzero := false
		for _, g := range m {
			if g[1] != "0" {
				nonzero = true
			}
		}
		if !nonzero {
			t.Errorf("%s is all zeros after a query:\n%s", name, metrics)
		}
	}
	get("/debug/pprof/heap")
	if traces := get("/debug/traces"); !strings.Contains(traces, "SELECT COUNT(Name) FROM Employed") {
		t.Errorf("/debug/traces missing the query:\n%s", traces)
	}
}
