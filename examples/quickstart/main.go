// Quickstart: compute a temporal aggregate over a small relation and print
// its constant intervals.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tempagg"
)

func main() {
	// A tiny project-staffing relation: who was assigned when, and at what
	// daily rate. Intervals are closed; time is in days since the epoch.
	tuples := []tempagg.Tuple{
		mustTuple("ada", 800, 0, 89),
		mustTuple("bob", 650, 30, 119),
		mustTuple("cho", 700, 60, 149),
		mustTuple("ada", 850, 120, 199), // Ada returns at a higher rate
	}
	rel := tempagg.RelationFromTuples("Staffing", tuples)

	// "How many people were on the project at each point in time?"
	headcount, _, err := tempagg.ComputeByInstant(rel, tempagg.Count,
		tempagg.Spec{Algorithm: tempagg.AggregationTree})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Headcount over time:")
	printResult(headcount)

	// "What was the total daily burn rate?" — same constant intervals,
	// different aggregate.
	burn, _, err := tempagg.ComputeByInstant(rel, tempagg.Sum,
		tempagg.Spec{Algorithm: tempagg.AggregationTree})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDaily burn rate over time:")
	printResult(burn.Coalesce())

	// Point lookups against the time-varying result.
	if v, ok := burn.At(75); ok {
		fmt.Printf("\nBurn rate on day 75: %s\n", v)
	}
}

func mustTuple(name string, rate int64, start, end tempagg.Time) tempagg.Tuple {
	t, err := tempagg.NewTuple(name, rate, start, end)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func printResult(res *tempagg.Result) {
	for i, row := range res.Rows {
		fmt.Printf("  %-12s %s\n", row.Interval, res.Value(i))
	}
}
