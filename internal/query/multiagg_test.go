package query

import (
	"encoding/json"
	"strings"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/relation"
)

func TestParseMultipleAggregates(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(Name), AVG(Salary), MAX(Salary) FROM Employed")
	if len(q.Aggs) != 3 {
		t.Fatalf("%d aggregates, want 3", len(q.Aggs))
	}
	want := []aggregate.Kind{aggregate.Count, aggregate.Avg, aggregate.Max}
	for i, k := range want {
		if q.Aggs[i].Kind != k {
			t.Fatalf("agg %d = %v, want %v", i, q.Aggs[i].Kind, k)
		}
	}
}

func TestParseGroupAttrPlusMultipleAggregates(t *testing.T) {
	q := mustParse(t, "SELECT Name, COUNT(Name), MIN(Salary) FROM Employed GROUP BY Name")
	if q.GroupAttr == nil || *q.GroupAttr != AttrName {
		t.Fatal("group attribute lost")
	}
	if len(q.Aggs) != 2 {
		t.Fatalf("%d aggregates, want 2", len(q.Aggs))
	}
}

func TestMultiAggStringRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"SELECT COUNT(Name), AVG(Salary) FROM R",
		"SELECT Name, COUNT(DISTINCT Name), SUM(Salary) FROM R GROUP BY Name",
	} {
		q := mustParse(t, sql)
		again := mustParse(t, q.String())
		if q.String() != again.String() {
			t.Errorf("round trip changed %q -> %q", q.String(), again.String())
		}
	}
}

func TestExecuteMultipleAggregates(t *testing.T) {
	rel := relation.Employed()
	qr := execute(t, "SELECT COUNT(Name), SUM(Salary), MIN(Salary) FROM Employed", rel)
	g := qr.Groups[0]
	if len(g.Results) != 3 {
		t.Fatalf("%d results, want 3", len(g.Results))
	}
	if g.Result != g.Results[0] {
		t.Fatal("Result must alias Results[0]")
	}
	// All three share the same constant intervals ([18,20] is the third-
	// from-last row), with each aggregate's value.
	count, sum, minimum := g.Results[0], g.Results[1], g.Results[2]
	if v, _ := count.At(19); v.Int != 3 {
		t.Errorf("COUNT at 19 = %v, want 3", v)
	}
	if v, _ := sum.At(19); v.Int != 40+45+37 {
		t.Errorf("SUM at 19 = %v, want 122", v)
	}
	if v, _ := minimum.At(19); v.Int != 37 {
		t.Errorf("MIN at 19 = %v, want 37", v)
	}
	// Output renders one table per aggregate.
	out := qr.String()
	for _, hdr := range []string{"COUNT | start | end", "SUM | start | end", "MIN | start | end"} {
		if !strings.Contains(out, hdr) {
			t.Errorf("output missing %q", hdr)
		}
	}
}

func TestExecuteMultiAggMixedDistinct(t *testing.T) {
	rel := relation.FromTuples("R", append(relation.Employed().Tuples,
		relation.Employed().Tuples[0])) // duplicate Rich
	qr := execute(t, "SELECT COUNT(Name), COUNT(DISTINCT Name) FROM R", rel)
	g := qr.Groups[0]
	plain, distinct := g.Results[0], g.Results[1]
	if v, _ := plain.At(19); v.Int != 4 {
		t.Errorf("COUNT at 19 = %v, want 4 (duplicate Rich counted)", v)
	}
	if v, _ := distinct.At(19); v.Int != 3 {
		t.Errorf("COUNT(DISTINCT) at 19 = %v, want 3", v)
	}
}

func TestExecuteFileMultipleAggregatesStream(t *testing.T) {
	rel := relation.Employed()
	path := writeRelation(t, rel)
	qr := runFile(t, "SELECT COUNT(Name), MAX(Salary) FROM Employed", path)
	g := qr.Groups[0]
	if len(g.Results) != 2 {
		t.Fatalf("%d results, want 2", len(g.Results))
	}
	if v, _ := g.Results[1].At(19); v.Int != 45 {
		t.Errorf("streamed MAX at 19 = %v, want 45", v)
	}
}

func TestExecuteMultiAggSpan(t *testing.T) {
	rel := relation.FromTuples("R", relation.Employed().Tuples[1:3])
	qr := execute(t, "SELECT COUNT(Name), SUM(Salary) FROM R GROUP BY SPAN 10", rel)
	g := qr.Groups[0]
	if len(g.Results) != 2 {
		t.Fatalf("%d results, want 2", len(g.Results))
	}
	if g.Results[0].Value(0).Int != 2 || g.Results[1].Value(0).Int != 80 {
		t.Fatalf("span values = %v, %v", g.Results[0].Value(0), g.Results[1].Value(0))
	}
}

func TestQueryResultMarshalJSON(t *testing.T) {
	qr := execute(t, "SELECT Name, COUNT(Name) FROM Employed GROUP BY Name",
		relation.Employed())
	data, err := json.Marshal(qr)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"query":`, `"plan":`, `"key":"Karen"`, `"aggregate":"COUNT"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}
