package query

import (
	"fmt"
	"strings"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
)

// Attr names a tuple attribute the language can reference.
type Attr int

const (
	// AttrName is the entity name (the paper's Name, 6 bytes).
	AttrName Attr = iota
	// AttrValue is the aggregated attribute (the paper's Salary).
	AttrValue
	// AttrStart is the valid-time start timestamp.
	AttrStart
	// AttrEnd is the valid-time end timestamp.
	AttrEnd
)

// String returns the canonical attribute name.
func (a Attr) String() string {
	switch a {
	case AttrName:
		return "Name"
	case AttrValue:
		return "Salary"
	case AttrStart:
		return "Start"
	case AttrEnd:
		return "Stop"
	}
	return fmt.Sprintf("Attr(%d)", int(a))
}

// parseAttr resolves an identifier to an attribute. Salary and Value are
// synonyms, as are Stop and End.
func parseAttr(name string) (Attr, error) {
	switch strings.ToLower(name) {
	case "name":
		return AttrName, nil
	case "salary", "value":
		return AttrValue, nil
	case "start":
		return AttrStart, nil
	case "stop", "end":
		return AttrEnd, nil
	}
	return 0, fmt.Errorf("query: unknown attribute %q", name)
}

// CompareOp is a WHERE comparison operator.
type CompareOp string

// Condition is one WHERE conjunct: attr op literal.
type Condition struct {
	Attr Attr
	Op   CompareOp
	// Str is set for string literals (AttrName comparisons).
	Str string
	// Num is set for numeric literals.
	Num int64
	// IsStr distinguishes the two literal kinds.
	IsStr bool
}

// TemporalGrouping selects how the time-line is partitioned (§2).
type TemporalGrouping int

const (
	// ByInstant partitions by instant — the TSQL2 default; results are
	// constant intervals.
	ByInstant TemporalGrouping = iota
	// BySpan partitions into fixed-length spans.
	BySpan
)

// AggSpec is one aggregate item of the select list.
type AggSpec struct {
	// Kind is the aggregate function.
	Kind aggregate.Kind
	// Distinct requests duplicate elimination before aggregation — exact
	// duplicate tuples are removed first, the paper's §7 treatment.
	Distinct bool
	// Attr is the aggregated attribute (inside the parentheses).
	Attr Attr
}

// String renders the select-list item.
func (a AggSpec) String() string {
	distinct := ""
	if a.Distinct {
		distinct = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Kind, distinct, a.Attr)
}

// ExplainMode selects the EXPLAIN behaviour of a query.
type ExplainMode int

const (
	// ExplainNone executes normally.
	ExplainNone ExplainMode = iota
	// ExplainPlan renders the plan tree — the chosen strategy plus every
	// alternative the planner priced — without executing the query.
	ExplainPlan
	// ExplainAnalyze executes the query (its aggregate rows are identical
	// to the plain query's, bit for bit) and appends the measured trace
	// report: per-stage spans with §6 counters, worker skew, and the
	// estimated-vs-actual cost delta.
	ExplainAnalyze
)

// Query is the parsed form of a temporal aggregate query.
type Query struct {
	// Explain, when not ExplainNone, turns the query into an EXPLAIN
	// [ANALYZE] statement; see ExplainMode.
	Explain ExplainMode
	// Aggs are the select list's aggregates, in order; never empty. Many
	// scalar aggregates in one query are computed separately, per §3.
	Aggs []AggSpec
	// Window, when set, restricts the query to tuples overlapping this
	// interval and clips the result to it (TSQL2's valid clause; §6.3's
	// "only interested in the results for a single year").
	Window *interval.Interval
	// At, when set, asks for the snapshot value at a single instant: the
	// aggregate over the tuples valid then, evaluated directly without the
	// constant-interval machinery (snapshot reduction of the temporal
	// aggregate). Mutually exclusive with Window and span grouping.
	At *interval.Time
	// Relation is the FROM target.
	Relation string
	// Live marks a snapshot read against a catalog-registered live
	// relation (SELECT ... FROM rel LIVE): the query evaluates against one
	// consistent epoch of the relation's shared LiveEvaluator while
	// ingestion proceeds. Live queries support the plain aggregate list,
	// AT, and VALID OVERLAPS; filtering, grouping, DISTINCT, USING, and
	// EXPLAIN are rejected by check.
	Live bool
	// GroupAttr, when set, requests attribute grouping (e.g. GROUP BY Name).
	GroupAttr *Attr
	// Where holds the conjunctive filter conditions.
	Where []Condition
	// Temporal selects instant or span grouping.
	Temporal TemporalGrouping
	// Span is the span length when Temporal == BySpan.
	Span interval.Time
	// Using optionally forces an algorithm, bypassing the optimizer.
	Using string
	// UsingK is the K argument of the USING clause (k-ordered tree only).
	UsingK int
	// HasUsingK records whether a K argument was given.
	HasUsingK bool
}

// String reconstructs a canonical form of the query.
func (q *Query) String() string {
	var b strings.Builder
	switch q.Explain {
	case ExplainPlan:
		b.WriteString("EXPLAIN ")
	case ExplainAnalyze:
		b.WriteString("EXPLAIN ANALYZE ")
	}
	b.WriteString("SELECT ")
	if q.GroupAttr != nil {
		fmt.Fprintf(&b, "%s, ", *q.GroupAttr)
	}
	for i, a := range q.Aggs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	fmt.Fprintf(&b, " FROM %s", q.Relation)
	if q.Live {
		b.WriteString(" LIVE")
	}
	if q.Window != nil {
		end := "FOREVER"
		if q.Window.End != interval.Forever {
			end = fmt.Sprintf("%d", q.Window.End)
		}
		fmt.Fprintf(&b, " VALID OVERLAPS %d %s", q.Window.Start, end)
	}
	if q.At != nil {
		fmt.Fprintf(&b, " AT %d", *q.At)
	}
	for i, c := range q.Where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		if c.IsStr {
			fmt.Fprintf(&b, "%s %s '%s'", c.Attr, c.Op, c.Str)
		} else {
			fmt.Fprintf(&b, "%s %s %d", c.Attr, c.Op, c.Num)
		}
	}
	switch {
	case q.GroupAttr != nil && q.Temporal == BySpan:
		fmt.Fprintf(&b, " GROUP BY %s, SPAN %d", *q.GroupAttr, q.Span)
	case q.GroupAttr != nil:
		fmt.Fprintf(&b, " GROUP BY %s", *q.GroupAttr)
	case q.Temporal == BySpan:
		fmt.Fprintf(&b, " GROUP BY SPAN %d", q.Span)
	}
	if q.Using != "" {
		fmt.Fprintf(&b, " USING %s", strings.ToUpper(q.Using))
		if q.HasUsingK {
			fmt.Fprintf(&b, " %d", q.UsingK)
		}
	}
	return b.String()
}
