package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

// TestErrDrop also covers the suppression directive: the fixture contains
// a flagged pattern silenced by //tempagglint:ignore with no `want`, so a
// broken directive surfaces as an unexpected diagnostic.
func TestErrDrop(t *testing.T) {
	linttest.Run(t, lint.ErrDrop, "errdrop")
}
