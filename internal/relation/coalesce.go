package relation

import (
	"sort"

	"tempagg/internal/tuple"
)

// CoalesceTuples merges value-equivalent tuples (same Name and Value) whose
// valid-time intervals overlap or meet, returning a new time-ordered slice —
// classic temporal-database coalescing, the relation-level counterpart of
// Result.Coalesce. TSQL2 relations are conceptually coalesced; applying this
// before aggregation also subsumes exact-duplicate elimination (§7).
//
// Coalescing changes COUNT semantics by design: a fact stored as two
// adjacent rows counts once afterwards. The query layer therefore exposes
// it only as an explicit preprocessing step, never implicitly.
func CoalesceTuples(ts []tuple.Tuple) []tuple.Tuple {
	if len(ts) == 0 {
		return nil
	}
	sorted := append([]tuple.Tuple(nil), ts...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Less(b)
	})
	out := make([]tuple.Tuple, 0, len(sorted))
	cur := sorted[0]
	for _, t := range sorted[1:] {
		sameFact := t.Name == cur.Name && t.Value == cur.Value
		adjoins := sameFact && (t.Valid.Overlaps(cur.Valid) || cur.Valid.Meets(t.Valid))
		if adjoins {
			if t.Valid.End > cur.Valid.End {
				cur.Valid.End = t.Valid.End
			}
			continue
		}
		out = append(out, cur)
		cur = t
	}
	out = append(out, cur)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// CoalesceInPlace coalesces the relation's tuples, returning how many rows
// were merged away. The relation ends up totally ordered by time.
func (r *Relation) CoalesceInPlace() int {
	before := len(r.Tuples)
	r.Tuples = CoalesceTuples(r.Tuples)
	return before - len(r.Tuples)
}
