//go:build !unix

package obs

import "time"

// processCPU is unavailable off unix; spans then carry wall time only.
func processCPU() time.Duration { return 0 }
