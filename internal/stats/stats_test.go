package stats

import (
	"math/rand"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/tuple"
	"tempagg/internal/workload"
)

func exactIntervals(t *testing.T, ts []tuple.Tuple) int {
	t.Helper()
	res := core.Reference(aggregate.For(aggregate.Count), ts)
	return len(res.Rows)
}

func TestEstimateExactWhenUnsampled(t *testing.T) {
	rel, err := workload.Generate(workload.Config{Tuples: 800, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	got := EstimateConstantIntervals(rel.Tuples, 0, 1)
	want := exactIntervals(t, rel.Tuples)
	if got != want {
		t.Fatalf("full-scan estimate %d != exact %d", got, want)
	}
}

func TestEstimateEmpty(t *testing.T) {
	if got := EstimateConstantIntervals(nil, 100, 1); got != 1 {
		t.Fatalf("empty relation estimate = %d, want 1", got)
	}
}

// TestEstimateMostlyUniqueTimestamps: the paper's workloads have mostly
// unique timestamps, so the estimate should land near 2n.
func TestEstimateMostlyUniqueTimestamps(t *testing.T) {
	rel, err := workload.Generate(workload.Config{Tuples: 4000, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := exactIntervals(t, rel.Tuples)
	got := EstimateConstantIntervals(rel.Tuples, 400, 7)
	if got < want/2 || got > want*2 {
		t.Fatalf("estimate %d not within 2x of exact %d", got, want)
	}
}

// TestEstimateCoarseGranularity: timestamps clustered on a coarse grid —
// the §6.3 "very coarse granularity" case — must yield a small estimate so
// the optimizer can pick the linked list.
func TestEstimateCoarseGranularity(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	ts := make([]tuple.Tuple, 5000)
	for i := range ts {
		s := r.Int63n(10) * 1000 // only 10 distinct start times
		ts[i] = tuple.MustNew("t", 1, s, s+999)
	}
	want := exactIntervals(t, ts) // ~11
	got := EstimateConstantIntervals(ts, 300, 9)
	if got > 4*want {
		t.Fatalf("coarse-granularity estimate %d far above exact %d", got, want)
	}
	if got < 2 {
		t.Fatalf("estimate %d too small", got)
	}
}

func TestEstimateNeverExceedsStructuralMax(t *testing.T) {
	rel, err := workload.Generate(workload.Config{Tuples: 1000, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	for _, sample := range []int{10, 50, 100, 999} {
		got := EstimateConstantIntervals(rel.Tuples, sample, 11)
		if got > 2*rel.Len()+1 {
			t.Fatalf("sample %d: estimate %d exceeds 2n+1", sample, got)
		}
		if got < 2 {
			t.Fatalf("sample %d: estimate %d degenerate", sample, got)
		}
	}
}
