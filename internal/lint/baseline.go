package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// A Baseline is the checked-in findings budget: the set of diagnostics
// the tree is allowed to carry and the number of //tempagglint:ignore
// directives it may contain. `tempagglint -baseline lint_baseline.json`
// fails on any finding not in the set and on any growth in the ignore
// count, so new hazards cannot land while pre-existing debt is paid
// down incrementally. Entries deliberately omit line numbers — a
// finding that merely moves with unrelated edits stays baselined.
type Baseline struct {
	Version  int             `json:"version"`
	Ignores  int             `json:"ignores"`
	Findings []BaselineEntry `json:"findings"`
}

// A BaselineEntry identifies one tolerated finding. File is
// module-relative (slash-separated) so the baseline is stable across
// checkouts.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineVersion is the current schema version.
const baselineVersion = 1

func (e BaselineEntry) String() string {
	return fmt.Sprintf("%s: %s: %s", e.File, e.Analyzer, e.Message)
}

func (e BaselineEntry) key() string {
	return e.File + "\x00" + e.Analyzer + "\x00" + e.Message
}

// EntryFor converts one diagnostic to its baseline identity,
// relativizing the file name against the module root. The driver also
// uses it for -json output so artifact paths match the baseline's.
func EntryFor(d Diagnostic, moduleDir string) BaselineEntry {
	file := d.Pos.Filename
	if moduleDir != "" {
		if rel, err := filepath.Rel(moduleDir, file); err == nil {
			file = filepath.ToSlash(rel)
		}
	}
	return BaselineEntry{File: file, Analyzer: d.Analyzer, Message: d.Message}
}

// NewBaseline captures the current findings and ignore count as a
// baseline, with entries sorted for a stable serialization.
func NewBaseline(diags []Diagnostic, ignores int, moduleDir string) *Baseline {
	b := &Baseline{Version: baselineVersion, Ignores: ignores, Findings: []BaselineEntry{}}
	for _, d := range diags {
		b.Findings = append(b.Findings, EntryFor(d, moduleDir))
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		return b.Findings[i].key() < b.Findings[j].key()
	})
	return b
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parse baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s has version %d, want %d", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// Write serializes the baseline to path with a trailing newline.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BaselineDelta is the result of comparing a run against a baseline.
type BaselineDelta struct {
	// New are current diagnostics with no budget left in the baseline
	// (multiset semantics: two identical findings need two entries).
	New []Diagnostic
	// Resolved counts baselined findings that no longer occur; the
	// baseline can be tightened with -write-baseline.
	Resolved int
	// Ignores and BaselineIgnores are the current and budgeted counts
	// of //tempagglint:ignore directives.
	Ignores, BaselineIgnores int
}

// Fails reports whether the delta violates the budget: any new finding,
// or more ignore directives than the baseline allows.
func (d *BaselineDelta) Fails() bool {
	return len(d.New) > 0 || d.Ignores > d.BaselineIgnores
}

// Compare diffs the current run against the baseline.
func (b *Baseline) Compare(diags []Diagnostic, ignores int, moduleDir string) *BaselineDelta {
	budget := map[string]int{}
	for _, e := range b.Findings {
		budget[e.key()]++
	}
	delta := &BaselineDelta{Ignores: ignores, BaselineIgnores: b.Ignores}
	for _, d := range diags {
		k := EntryFor(d, moduleDir).key()
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		delta.New = append(delta.New, d)
	}
	for _, left := range budget {
		delta.Resolved += left
	}
	return delta
}
