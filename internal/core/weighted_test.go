package core

import (
	"math"
	"math/rand"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/relation"
)

func employedCount(t *testing.T) *Result {
	t.Helper()
	f := aggregate.For(aggregate.Count)
	res, _, err := Run(Spec{Algorithm: AggregationTree}, f, relation.Employed().Tuples)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIntegralEmployed(t *testing.T) {
	res := employedCount(t)
	// Counts over [0,24]: 0×7 + 1×1 + 2×5 + 1×5 + 3×3 + 2×1 + 1×3 = 30.
	got, err := res.Integral(interval.MustNew(0, 24))
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("integral = %g, want 30", got)
	}
}

func TestTimeWeightedMeanEmployed(t *testing.T) {
	res := employedCount(t)
	mean, ok, err := res.TimeWeightedMean(interval.MustNew(0, 24))
	if err != nil || !ok {
		t.Fatalf("mean failed: %v, %t", err, ok)
	}
	if want := 30.0 / 25.0; math.Abs(mean-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", mean, want)
	}
}

func TestTimeWeightedMeanExcludesNulls(t *testing.T) {
	// MIN is null outside [7,21]; over [0,24] the mean must weight only
	// the defined stretch.
	f := aggregate.For(aggregate.Min)
	res, _, err := Run(Spec{Algorithm: LinkedList}, f, relation.Employed().Tuples)
	if err != nil {
		t.Fatal(err)
	}
	mean, ok, err := res.TimeWeightedMean(interval.MustNew(0, 24))
	if err != nil || !ok {
		t.Fatalf("mean failed: %v, %t", err, ok)
	}
	// MIN values: [7,7]=35, [8,12]=35, [13,17]=45, [18,20]=37, [21,21]=37,
	// [22,24]=40 → (35·6 + 45·5 + 37·4 + 40·3)/18.
	want := (35.0*6 + 45*5 + 37*4 + 40*3) / 18
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", mean, want)
	}
}

func TestTimeWeightedMeanAllNull(t *testing.T) {
	f := aggregate.For(aggregate.Sum)
	res, _, err := Run(Spec{Algorithm: LinkedList}, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := res.TimeWeightedMean(interval.MustNew(0, 9)); err != nil || ok {
		t.Fatalf("all-null mean: ok=%t err=%v, want not-ok", ok, err)
	}
}

func TestTimeWeightedMeanErrors(t *testing.T) {
	res := employedCount(t)
	if _, _, err := res.TimeWeightedMean(interval.Universe()); err == nil {
		t.Error("infinite window must fail")
	}
	//tempagglint:ignore intervalbounds the test needs an invalid window to exercise rejection
	if _, _, err := res.TimeWeightedMean(interval.Interval{Start: 9, End: 3}); err == nil {
		t.Error("invalid window must fail")
	}
	if _, err := res.Integral(interval.Universe()); err == nil {
		t.Error("infinite integral window must fail")
	}
	//tempagglint:ignore intervalbounds the test needs an invalid window to exercise rejection
	if _, err := res.Integral(interval.Interval{Start: 9, End: 3}); err == nil {
		t.Error("invalid integral window must fail")
	}
}

// TestIntegralAdditiveOverSplits: the integral over [a,c] equals the sum
// over [a,b] and [b+1,c].
func TestIntegralAdditiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	f := aggregate.For(aggregate.Count)
	for trial := 0; trial < 50; trial++ {
		ts := randomTuples(r, r.Intn(40), 200)
		res := Reference(f, ts)
		a := r.Int63n(100)
		b := a + r.Int63n(100)
		c := b + 1 + r.Int63n(100)
		whole, err := res.Integral(interval.MustNew(a, c))
		if err != nil {
			t.Fatal(err)
		}
		left, err := res.Integral(interval.MustNew(a, b))
		if err != nil {
			t.Fatal(err)
		}
		right, err := res.Integral(interval.MustNew(b+1, c))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(whole-(left+right)) > 1e-9 {
			t.Fatalf("integral not additive: %g != %g + %g", whole, left, right)
		}
	}
}
