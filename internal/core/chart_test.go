package core

import (
	"strings"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/relation"
)

func TestChartEmployed(t *testing.T) {
	res := employedCount(t)
	chart := res.Chart(10)
	lines := strings.Split(strings.TrimRight(chart, "\n"), "\n")
	if len(lines) != 8 { // header + 7 rows
		t.Fatalf("%d lines:\n%s", len(lines), chart)
	}
	if !strings.HasPrefix(lines[0], "COUNT") {
		t.Fatalf("header = %q", lines[0])
	}
	// The maximum (count 3 over [18,20]) gets the full-width bar.
	var maxLine, zeroLine string
	for _, l := range lines[1:] {
		if strings.Contains(l, "[18,20]") {
			maxLine = l
		}
		if strings.Contains(l, "[0,6]") {
			zeroLine = l
		}
	}
	if got := strings.Count(maxLine, "█"); got != 10 {
		t.Fatalf("max bar %d blocks, want 10: %q", got, maxLine)
	}
	if strings.Contains(zeroLine, "█") {
		t.Fatalf("zero row has a bar: %q", zeroLine)
	}
}

func TestChartNullRows(t *testing.T) {
	f := aggregate.For(aggregate.Min)
	res, _, err := Run(Spec{Algorithm: LinkedList}, f, relation.Employed().Tuples)
	if err != nil {
		t.Fatal(err)
	}
	chart := res.Chart(0) // default width
	if !strings.Contains(chart, "- |") && !strings.Contains(chart, "- |") {
		t.Fatalf("null rows should render '-' with no bar:\n%s", chart)
	}
}

func TestSparkline(t *testing.T) {
	res := employedCount(t)
	line, err := res.Sparkline(interval.MustNew(0, 24), 25)
	if err != nil {
		t.Fatal(err)
	}
	runes := []rune(line)
	if len(runes) != 25 {
		t.Fatalf("sparkline has %d columns, want 25: %q", len(runes), line)
	}
	if runes[0] != '▁' {
		t.Fatalf("column 0 (count 0) = %q, want ▁", string(runes[0]))
	}
	if runes[19] != '█' {
		t.Fatalf("column 19 (count 3) = %q, want █", string(runes[19]))
	}
}

func TestSparklineErrors(t *testing.T) {
	res := employedCount(t)
	if _, err := res.Sparkline(interval.Universe(), 10); err == nil {
		t.Error("infinite window must fail")
	}
	//tempagglint:ignore intervalbounds the test needs an invalid window to exercise rejection
	if _, err := res.Sparkline(interval.Interval{Start: 5, End: 1}, 10); err == nil {
		t.Error("invalid window must fail")
	}
	if line, err := res.Sparkline(interval.At(19), 0); err != nil || len(line) == 0 {
		t.Errorf("degenerate window: %q, %v", line, err)
	}
}
