package relation_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"tempagg/internal/relation"
)

// Example_storageRoundTrip writes the Employed relation in the paged binary
// format and scans it back one page at a time.
func Example_storageRoundTrip() {
	dir, err := os.MkdirTemp("", "tempagg-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "employed.rel")

	if err := relation.WriteFile(path, relation.Employed()); err != nil {
		panic(err)
	}
	sc, err := relation.Open(path, relation.ScanOptions{})
	if err != nil {
		panic(err)
	}
	defer sc.Close()
	fmt.Printf("tuples: %d, sorted flag: %t\n", sc.Count(), sc.Sorted())
	for {
		t, ok, err := sc.Next()
		if err != nil {
			panic(err)
		}
		if !ok {
			break
		}
		fmt.Println(t)
	}
	// Output:
	// tuples: 4, sorted flag: false
	// [Rich, 40, 18, ∞]
	// [Karen, 45, 8, 20]
	// [Nathan, 35, 7, 12]
	// [Nathan, 37, 18, 21]
}

// ExampleReadCSV imports a relation from CSV text.
func ExampleReadCSV() {
	csv := "name,value,start,end\nKaren,45,8,20\nRich,40,18,forever\n"
	rel, err := relation.ReadCSV(bytes.NewReader([]byte(csv)), "Imported")
	if err != nil {
		panic(err)
	}
	for _, t := range rel.Tuples {
		fmt.Println(t)
	}
	// Output:
	// [Karen, 45, 8, 20]
	// [Rich, 40, 18, ∞]
}

// ExampleCoalesceTuples merges value-equivalent adjacent rows.
func ExampleCoalesceTuples() {
	rel := relation.New("r")
	for _, iv := range [][2]int64{{0, 9}, {10, 19}, {30, 40}} {
		rel.Tuples = append(rel.Tuples, relation.Employed().Tuples[0])
		last := &rel.Tuples[len(rel.Tuples)-1]
		last.Valid.Start, last.Valid.End = iv[0], iv[1]
	}
	out := relation.CoalesceTuples(rel.Tuples)
	for _, t := range out {
		fmt.Println(t.Valid)
	}
	// Output:
	// [0,19]
	// [30,40]
}
