package core

import (
	"fmt"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/tuple"
	"tempagg/internal/workload"
)

// This file is the snapshot-consistency differential oracle (S36): every
// snapshot a live evaluator ever hands out must be bit-identical — as a
// coalesced constant-interval partition — to a fresh batch Reference
// evaluation over exactly the tuples admitted at that epoch. The generic
// strategy rows in difftest_test.go cover the final epoch; here the epochs
// in the middle are the point, across ingestion chunkings, segment sizes,
// and every workload shape and aggregate.

// liveInterleaving is one way of cutting a relation into ingestion batches
// with snapshot points between them.
type liveInterleaving struct {
	name string
	// chunk returns the batch length to ingest next, given how many tuples
	// remain; must be ≥ 1.
	chunk func(remaining int) int
}

func liveInterleavings() []liveInterleaving {
	return []liveInterleaving{
		{"tuple-at-a-time", func(int) int { return 1 }},
		{"page", func(int) int { return 7 }},
		{"half", func(remaining int) int { return max(remaining/2, 1) }},
		{"all-at-once", func(remaining int) int { return max(remaining, 1) }},
	}
}

// TestLiveSnapshotOracle: ingest each workload in chunks, snapshot at every
// chunk boundary, and require every snapshot of every aggregate to equal
// the Reference oracle over its admitted prefix. Snapshots are also re-read
// after ingestion has moved on (held list), so isolation is checked both at
// the epoch and retroactively.
func TestLiveSnapshotOracle(t *testing.T) {
	for _, wl := range diffWorkloads() {
		for _, n := range []int{0, 1, 37, 160} {
			cfg := wl.cfg
			cfg.Tuples = n
			cfg.Seed = int64(2000 + n)
			rel, err := workload.Generate(cfg)
			if err != nil {
				t.Fatalf("%s/%d: %v", wl.name, n, err)
			}
			for _, segSize := range []int{16, 64} {
				for _, il := range liveInterleavings() {
					t.Run(fmt.Sprintf("%s/n=%d/seg=%d/%s", wl.name, n, segSize, il.name), func(t *testing.T) {
						ev := NewLive(LiveOptions{SegmentSize: segSize})
						defer closeLive(ev)
						type held struct {
							snap *LiveSnapshot
							seq  int64
						}
						var snaps []held
						ts := rel.Tuples
						for lo := 0; lo < len(ts); {
							hi := min(lo+il.chunk(len(ts)-lo), len(ts))
							if err := ev.AddBatch(ts[lo:hi]); err != nil {
								t.Fatal(err)
							}
							lo = hi
							snap, err := ev.Snapshot()
							if err != nil {
								t.Fatal(err)
							}
							if snap.Seq() != int64(lo) {
								t.Fatalf("snapshot seq %d after ingesting %d", snap.Seq(), lo)
							}
							// Check the snapshot at its epoch...
							assertSnapshotMatchesReference(t, snap, ts)
							snaps = append(snaps, held{snap, int64(lo)})
						}
						if len(ts) == 0 {
							snap, err := ev.Snapshot()
							if err != nil {
								t.Fatal(err)
							}
							snaps = append(snaps, held{snap, 0})
						}
						// ...and retroactively, after the whole stream landed.
						for _, h := range snaps {
							if h.snap.Seq() != h.seq {
								t.Fatalf("held snapshot seq drifted: %d, was %d", h.snap.Seq(), h.seq)
							}
							assertSnapshotMatchesReference(t, h.snap, ts)
						}
					})
				}
			}
		}
	}
}

// assertSnapshotMatchesReference checks every aggregate of snap against a
// fresh batch Reference evaluation over the snapshot's admitted prefix.
func assertSnapshotMatchesReference(t *testing.T, snap *LiveSnapshot, all []tuple.Tuple) {
	t.Helper()
	prefix := all[:snap.Seq()]
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		got, err := snap.Result(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%v @ seq %d: %v", kind, snap.Seq(), err)
		}
		if want := Reference(f, prefix); !got.Equal(want) {
			t.Fatalf("%v @ seq %d: snapshot differs from batch oracle:\ngot:\n%s\nwant:\n%s",
				kind, snap.Seq(), got, want)
		}
	}
}

// TestLiveMetamorphicPrefixReplay: snapshot-at-epoch-k ≡ prefix-replay-of-k.
// A snapshot taken after k tuples must equal a second, fresh live evaluator
// fed only those k tuples and read at its final epoch — the live protocol's
// equivalent of the partition-concatenation property.
func TestLiveMetamorphicPrefixReplay(t *testing.T) {
	cfg := workload.Config{Tuples: 150, Lifespan: 4000, Order: workload.Random, LongLivedPct: 30, Seed: 77}
	rel, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := rel.Tuples
	ev := NewLive(LiveOptions{SegmentSize: 16})
	defer closeLive(ev)
	ingested := 0
	for _, k := range []int{0, 1, 15, 16, 17, 75, 150} {
		if err := ev.AddBatch(ts[ingested:k]); err != nil {
			t.Fatal(err)
		}
		ingested = k
		snap, err := ev.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		replay := NewLive(LiveOptions{SegmentSize: 16})
		if err := replay.AddBatch(ts[:k]); err != nil {
			t.Fatal(err)
		}
		rsnap, err := replay.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range aggregate.Kinds() {
			f := aggregate.For(kind)
			got, err := snap.Result(f)
			if err != nil {
				t.Fatal(err)
			}
			want, err := rsnap.Result(f)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%v @ k=%d: snapshot differs from prefix replay", kind, k)
			}
		}
		closeLive(replay)
	}
}
