//go:build unix

package obs

import (
	"syscall"
	"time"
)

// processCPU reports the process's cumulative CPU time (user + system) via
// getrusage. Span start/end deltas of this value are the per-span CPU
// estimate; on a parallel stage the wall/CPU ratio exposes how much of the
// machine the stage actually used.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
