// Benchmarks regenerating the measurements behind every table and figure of
// the paper's evaluation (§6), one benchmark family per artifact. Sizes are
// capped at 16K tuples here so `go test -bench=.` stays quick; the full
// 1K–64K sweep with median-of-seeds reporting is cmd/benchharness.
package tempagg_test

import (
	"fmt"
	"testing"

	"tempagg"
)

var benchSizes = []int{1 << 10, 1 << 12, 1 << 14}

func generate(b *testing.B, size, longPct int, order tempagg.WorkloadConfig) *tempagg.Relation {
	b.Helper()
	cfg := order
	cfg.Tuples = size
	cfg.LongLivedPct = longPct
	if cfg.Seed == 0 {
		cfg.Seed = 101
	}
	rel, err := tempagg.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rel
}

func benchEvaluate(b *testing.B, rel *tempagg.Relation, spec tempagg.Spec) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var peak int64
	for i := 0; i < b.N; i++ {
		res, stats, err := tempagg.ComputeByInstant(rel, tempagg.Count, spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
		peak = stats.PeakBytes()
	}
	b.ReportMetric(float64(peak), "peakB")
	b.ReportMetric(float64(rel.Len())/b.Elapsed().Seconds()*float64(b.N), "tuples/s")
}

// --- Table 1: the Employed example, every algorithm ---

func BenchmarkTable1Employed(b *testing.B) {
	rel := tempagg.Employed()
	specs := map[string]tempagg.Spec{
		"linked-list": {Algorithm: tempagg.LinkedList},
		"agg-tree":    {Algorithm: tempagg.AggregationTree},
		"ktree-k4":    {Algorithm: tempagg.KOrderedTree, K: 4},
		"btree":       {Algorithm: tempagg.BalancedTree},
	}
	for name, spec := range specs {
		b.Run(name, func(b *testing.B) { benchEvaluate(b, rel, spec) })
	}
}

// --- Table 2: sortedness metrics at the paper's n=10000, k=100 ---

func BenchmarkTable2KOrderedPercentage(b *testing.B) {
	rel := generate(b, 10000, 0, tempagg.WorkloadConfig{Order: tempagg.WorkloadKOrdered, K: 100, KPct: 0.05})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tempagg.KOrderedPercentage(rel.Tuples, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: unordered relations ---

func BenchmarkFigure6(b *testing.B) {
	series := []struct {
		name    string
		spec    tempagg.Spec
		longPct int
	}{
		{"linked-list/ll=0", tempagg.Spec{Algorithm: tempagg.LinkedList}, 0},
		{"linked-list/ll=80", tempagg.Spec{Algorithm: tempagg.LinkedList}, 80},
		{"agg-tree/ll=0", tempagg.Spec{Algorithm: tempagg.AggregationTree}, 0},
		{"agg-tree/ll=40", tempagg.Spec{Algorithm: tempagg.AggregationTree}, 40},
		{"agg-tree/ll=80", tempagg.Spec{Algorithm: tempagg.AggregationTree}, 80},
	}
	for _, s := range series {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/n=%d", s.name, n), func(b *testing.B) {
				rel := generate(b, n, s.longPct, tempagg.WorkloadConfig{Order: tempagg.WorkloadRandom})
				benchEvaluate(b, rel, s.spec)
			})
		}
	}
}

// --- Figures 7 and 8: ordered relations, 0% and 80% long-lived ---

func benchOrderedFigure(b *testing.B, longPct int) {
	type series struct {
		name string
		spec tempagg.Spec
		cfg  tempagg.WorkloadConfig
	}
	kcfg := func(k int) tempagg.WorkloadConfig {
		return tempagg.WorkloadConfig{Order: tempagg.WorkloadKOrdered, K: k, KPct: 0.08}
	}
	all := []series{
		{"linked-list", tempagg.Spec{Algorithm: tempagg.LinkedList},
			tempagg.WorkloadConfig{Order: tempagg.WorkloadSorted}},
		{"agg-tree-sorted", tempagg.Spec{Algorithm: tempagg.AggregationTree},
			tempagg.WorkloadConfig{Order: tempagg.WorkloadSorted}},
		{"ktree-k400", tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 400}, kcfg(400)},
		{"ktree-k40", tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 40}, kcfg(40)},
		{"ktree-k4", tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 4}, kcfg(4)},
		{"ktree-sorted-k1", tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 1},
			tempagg.WorkloadConfig{Order: tempagg.WorkloadSorted}},
	}
	for _, s := range all {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/n=%d", s.name, n), func(b *testing.B) {
				rel := generate(b, n, longPct, s.cfg)
				benchEvaluate(b, rel, s.spec)
			})
		}
	}
}

func BenchmarkFigure7(b *testing.B) { benchOrderedFigure(b, 0) }

func BenchmarkFigure8(b *testing.B) { benchOrderedFigure(b, 80) }

// --- Figure 9: memory (peakB metric carries the result) ---

func BenchmarkFigure9Memory(b *testing.B) {
	series := []struct {
		name string
		spec tempagg.Spec
		cfg  tempagg.WorkloadConfig
	}{
		{"agg-tree", tempagg.Spec{Algorithm: tempagg.AggregationTree},
			tempagg.WorkloadConfig{Order: tempagg.WorkloadRandom}},
		{"linked-list", tempagg.Spec{Algorithm: tempagg.LinkedList},
			tempagg.WorkloadConfig{Order: tempagg.WorkloadRandom}},
		{"ktree-k40", tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 40},
			tempagg.WorkloadConfig{Order: tempagg.WorkloadKOrdered, K: 40, KPct: 0.08}},
		{"ktree-sorted-k1", tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 1},
			tempagg.WorkloadConfig{Order: tempagg.WorkloadSorted}},
	}
	for _, s := range series {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/n=%d", s.name, n), func(b *testing.B) {
				rel := generate(b, n, 0, s.cfg)
				benchEvaluate(b, rel, s.spec)
			})
		}
	}
}

// --- §6.2 prose: k-ordered tree memory under long-lived tuples ---

func BenchmarkMemoryLongLived(b *testing.B) {
	for _, longPct := range []int{0, 80} {
		b.Run(fmt.Sprintf("ktree-k4/ll=%d", longPct), func(b *testing.B) {
			rel := generate(b, 1<<13, longPct,
				tempagg.WorkloadConfig{Order: tempagg.WorkloadKOrdered, K: 4, KPct: 0.08})
			benchEvaluate(b, rel, tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 4})
		})
	}
}

// --- Ablations (future work §7) ---

func BenchmarkAblationBalancedTree(b *testing.B) {
	for _, s := range []struct {
		name string
		spec tempagg.Spec
	}{
		{"agg-tree-sorted", tempagg.Spec{Algorithm: tempagg.AggregationTree}},
		{"balanced-sorted", tempagg.Spec{Algorithm: tempagg.BalancedTree}},
		{"ktree-sorted-k1", tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 1}},
	} {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/n=%d", s.name, n), func(b *testing.B) {
				rel := generate(b, n, 0, tempagg.WorkloadConfig{Order: tempagg.WorkloadSorted})
				benchEvaluate(b, rel, s.spec)
			})
		}
	}
}

func BenchmarkAblationSpanGrouping(b *testing.B) {
	rel := generate(b, 1<<13, 0, tempagg.WorkloadConfig{Order: tempagg.WorkloadSorted})
	window, err := tempagg.NewInterval(0, 999_999)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("span-1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tempagg.ComputeBySpan(rel, tempagg.Count, 1000, window); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instant", func(b *testing.B) {
		benchEvaluate(b, rel, tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 1})
	})
}

// --- Tuma baseline: the cost of the second scan ---

func BenchmarkTumaBaseline(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rel := generate(b, n, 0, tempagg.WorkloadConfig{Order: tempagg.WorkloadRandom})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tempagg.ComputeTuma(tempagg.NewSliceSource(rel.Tuples), tempagg.Count); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: out-of-core partitioned evaluation (§5.1/§7) ---

func BenchmarkAblationPartitioned(b *testing.B) {
	window, err := tempagg.NewInterval(0, 999_999)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range benchSizes {
		rel := generate(b, n, 0, tempagg.WorkloadConfig{Order: tempagg.WorkloadRandom})
		b.Run(fmt.Sprintf("whole-tree/n=%d", n), func(b *testing.B) {
			benchEvaluate(b, rel, tempagg.Spec{Algorithm: tempagg.AggregationTree})
		})
		b.Run(fmt.Sprintf("partitioned-16/n=%d", n), func(b *testing.B) {
			opts := tempagg.PartitionOptions{Boundaries: tempagg.UniformBoundaries(window, 16)}
			b.ResetTimer()
			var peak int64
			for i := 0; i < b.N; i++ {
				_, stats, err := tempagg.ComputePartitioned(rel, tempagg.Count, opts)
				if err != nil {
					b.Fatal(err)
				}
				peak = stats.PeakBytes()
			}
			b.ReportMetric(float64(peak), "peakB")
		})
	}
}

// --- Query layer overhead: end-to-end SQL vs direct evaluation ---

func BenchmarkQueryLayer(b *testing.B) {
	rel := generate(b, 1<<13, 0, tempagg.WorkloadConfig{Order: tempagg.WorkloadSorted})
	rel.Name = "R"
	b.Run("sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tempagg.Query("SELECT COUNT(Name) FROM R", rel, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := tempagg.ComputeByInstant(rel, tempagg.Count,
				tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
