// Fixture for poolbalance: sync.Pool Get/Put pairing along control-flow
// paths — leaks on early returns, discarded Gets, use-after-Put, double
// Put, deferred Puts, and legitimate ownership hand-offs.
package fixture

import (
	"errors"
	"sync"
)

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

var errNegative = errors.New("negative size")

func use(b []byte) {}

func leakOnEarlyReturn(n int) error {
	buf := bufPool.Get().(*[]byte)
	if n < 0 {
		return errNegative // want `buf obtained from sync\.Pool at line \d+ is neither Put back nor handed off`
	}
	use(*buf)
	bufPool.Put(buf)
	return nil
}

func balancedWithDefer(n int) {
	buf := bufPool.Get().(*[]byte)
	defer bufPool.Put(buf)
	if n == 0 {
		return // ok: the deferred Put runs on this path too
	}
	use(*buf)
}

func deferredClosurePut() {
	buf := bufPool.Get().(*[]byte)
	defer func() {
		*buf = (*buf)[:0]
		bufPool.Put(buf)
	}()
	use(*buf) // ok: Put inside the deferred closure covers every exit
}

func discardedGet() {
	bufPool.Get() // want `result of sync\.Pool\.Get is discarded`
}

func useAfterPut() byte {
	buf := bufPool.Get().(*[]byte)
	bufPool.Put(buf)
	return (*buf)[0] // want `use of buf after it was Put back to the pool`
}

func doublePut() {
	buf := bufPool.Get().(*[]byte)
	bufPool.Put(buf)
	bufPool.Put(buf) // want `buf may already have been Put back to the pool \(double Put\)`
}

func putOnOnePathOnly(ok bool) {
	buf := bufPool.Get().(*[]byte)
	if ok {
		bufPool.Put(buf)
	}
} // want `buf obtained from sync\.Pool at line \d+ is neither Put back nor handed off`

func handOffToCaller() *[]byte {
	buf := bufPool.Get().(*[]byte)
	return buf // ok: ownership transfers to the caller
}

func handOffToCall() {
	buf := bufPool.Get().(*[]byte)
	use(*buf)         // reads do not escape...
	consumeOwned(buf) // ...but passing the pointer on hands ownership over
}

func consumeOwned(b *[]byte) { bufPool.Put(b) }

func aliasTransfersOwnership() {
	buf := bufPool.Get().(*[]byte)
	b := *buf
	b = b[:0]
	use(b)
	bufPool.Put(buf) // ok: original still owned and Put back
}

func straightLineBalanced() {
	buf := bufPool.Get().(*[]byte)
	use(*buf)
	bufPool.Put(buf) // ok
}
