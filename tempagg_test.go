package tempagg_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"tempagg"
)

// TestPublicAPIQuickstart walks the README's quick-start path end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	rel := tempagg.Employed()
	res, stats, err := tempagg.ComputeByInstant(rel, tempagg.Count,
		tempagg.Spec{Algorithm: tempagg.AggregationTree})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d constant intervals, want 7", len(res.Rows))
	}
	if stats.Tuples != 4 {
		t.Fatalf("stats.Tuples = %d", stats.Tuples)
	}
	if v, ok := res.At(19); !ok || v.Int != 3 {
		t.Fatalf("count at 19 = %v", v)
	}
}

// TestPublicAPIFullPipeline: generate → write → scan → evaluate → query.
func TestPublicAPIFullPipeline(t *testing.T) {
	rel, err := tempagg.Generate(tempagg.WorkloadConfig{Tuples: 800, LongLivedPct: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "synth.rel")
	if err := tempagg.WriteRelation(path, rel); err != nil {
		t.Fatal(err)
	}
	back, err := tempagg.ReadRelation(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rel.Len() {
		t.Fatalf("round trip: %d != %d", back.Len(), rel.Len())
	}

	// The three single-scan algorithms and Tuma agree.
	var results []*tempagg.Result
	for _, spec := range []tempagg.Spec{
		{Algorithm: tempagg.LinkedList},
		{Algorithm: tempagg.AggregationTree},
		{Algorithm: tempagg.BalancedTree},
	} {
		res, _, err := tempagg.ComputeByInstant(back, tempagg.Sum, spec)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	tumaRes, err := tempagg.ComputeTuma(tempagg.NewSliceSource(back.Tuples), tempagg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, tumaRes)
	for i := 1; i < len(results); i++ {
		if !results[0].Equal(results[i]) {
			t.Fatalf("result %d disagrees", i)
		}
	}

	// Sorted copy through the k-ordered tree.
	sorted := back.Clone()
	sorted.SortByTime()
	res, _, err := tempagg.ComputeByInstant(sorted, tempagg.Sum,
		tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Equal(res) {
		t.Fatal("ktree disagrees")
	}

	// Query language over the same relation.
	back.Name = "Synth"
	qr, err := tempagg.Query("SELECT AVG(Salary) FROM Synth", back, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := qr.Groups[0].Result.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISpanAndMetrics(t *testing.T) {
	rel, err := tempagg.Generate(tempagg.WorkloadConfig{Tuples: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	window, err := tempagg.NewInterval(0, 999_999)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tempagg.ComputeBySpan(rel, tempagg.Count, 100_000, window)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d spans, want 10", len(res.Rows))
	}

	if k := tempagg.KOrderedness(rel.Tuples); k == 0 {
		t.Fatal("random relation should not be sorted")
	}
	sorted := rel.Clone()
	sorted.SortByTime()
	if k := tempagg.KOrderedness(sorted.Tuples); k != 0 {
		t.Fatalf("sorted relation is %d-ordered, want 0", k)
	}
	if _, err := tempagg.KOrderedPercentage(sorted.Tuples, 10); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIEvaluatorIncremental(t *testing.T) {
	ev, err := tempagg.NewEvaluator(tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 2}, tempagg.Max)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tu, err := tempagg.NewTuple("t", int64(i%7), int64(i*3), int64(i*3+10))
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ev.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if ev.Stats().Collected == 0 {
		t.Fatal("expected GC activity on ordered input")
	}
}

// ExampleComputeByInstant reproduces the paper's Table 1.
func ExampleComputeByInstant() {
	rel := tempagg.Employed()
	res, _, err := tempagg.ComputeByInstant(rel, tempagg.Count,
		tempagg.Spec{Algorithm: tempagg.AggregationTree})
	if err != nil {
		panic(err)
	}
	for i, row := range res.Rows {
		fmt.Printf("%s %s\n", res.Value(i), row.Interval)
	}
	// Output:
	// 0 [0,6]
	// 1 [7,7]
	// 2 [8,12]
	// 1 [13,17]
	// 3 [18,20]
	// 2 [21,21]
	// 1 [22,∞]
}

// ExampleQuery shows the TSQL2-flavoured query interface.
func ExampleQuery() {
	qr, err := tempagg.Query(
		"SELECT MAX(Salary) FROM Employed WHERE Name = 'Nathan'",
		tempagg.Employed(), nil)
	if err != nil {
		panic(err)
	}
	res := qr.Groups[0].Result.Coalesce()
	for i, row := range res.Rows {
		fmt.Printf("%s %s\n", res.Value(i), row.Interval)
	}
	// Output:
	// - [0,6]
	// 35 [7,12]
	// - [13,17]
	// 37 [18,21]
	// - [22,∞]
}
