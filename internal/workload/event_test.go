package workload

import (
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
)

func TestEventRelationGeneration(t *testing.T) {
	rel, err := Generate(Config{Tuples: 2000, EventPct: 100, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range rel.Tuples {
		if tu.Valid.Duration() != 1 {
			t.Fatalf("event tuple with duration %d", tu.Valid.Duration())
		}
	}
}

func TestEventMixExact(t *testing.T) {
	rel, err := Generate(Config{Tuples: 1000, EventPct: 30, LongLivedPct: 20, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	events, long := 0, 0
	for _, tu := range rel.Tuples {
		switch d := tu.Valid.Duration(); {
		case d == 1:
			events++
		case d > DefaultShortMax:
			long++
		}
	}
	// Events are exactly 30% (single-chronon short tuples can only add a
	// handful of false positives at 1-in-1000 odds per short tuple).
	if events < 300 || events > 320 {
		t.Fatalf("events = %d, want ≈300", events)
	}
	if long != 200 {
		t.Fatalf("long-lived = %d, want 200", long)
	}
}

func TestEventRelationAggregates(t *testing.T) {
	// Aggregates over event relations (§2) work with every algorithm: each
	// event induces a single-instant constant interval.
	rel, err := Generate(Config{Tuples: 500, EventPct: 100, Order: Sorted, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	f := aggregate.For(aggregate.Count)
	want := core.Reference(f, rel.Tuples)
	for _, spec := range []core.Spec{
		{Algorithm: core.LinkedList},
		{Algorithm: core.AggregationTree},
		{Algorithm: core.KOrderedTree, K: 1},
		{Algorithm: core.BalancedTree},
	} {
		got, _, err := core.Run(spec, f, rel.Tuples)
		if err != nil {
			t.Fatalf("%v: %v", spec.Algorithm, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%v: event relation mis-aggregated", spec.Algorithm)
		}
	}
}

func TestEventValidation(t *testing.T) {
	if _, err := Generate(Config{Tuples: 10, EventPct: 101}); err == nil {
		t.Error("EventPct > 100 must fail")
	}
	if _, err := Generate(Config{Tuples: 10, EventPct: 60, LongLivedPct: 60}); err == nil {
		t.Error("event + long-lived > 100% must fail")
	}
}
