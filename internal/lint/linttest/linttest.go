// Package linttest runs a lint analyzer over a fixture directory and
// compares its diagnostics against `// want` expectations, the same
// fixture convention golang.org/x/tools/go/analysis/analysistest uses
// (re-implemented here because the repository builds offline).
//
// Fixtures live under internal/lint/testdata/src/<name>/ as ordinary Go
// files in package `fixture`; they may import real tempagg packages. A
// line expecting diagnostics carries one or more quoted regular
// expressions:
//
//	ev.Add(t) // want `Add called on ev after Finish`
//
// Every diagnostic must be matched by a want on its line and every want
// must be matched by a diagnostic, or the test fails.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"tempagg/internal/lint"
)

var (
	progOnce sync.Once
	prog     *lint.Program
	progErr  error
)

// program loads the whole tempagg module once per test binary; fixture
// packages type-check against its in-memory packages and export data.
func program(t *testing.T) *lint.Program {
	t.Helper()
	progOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			progErr = err
			return
		}
		prog, progErr = lint.Load(lint.LoadOptions{Dir: root}, "./...")
	})
	if progErr != nil {
		t.Fatalf("linttest: load module: %v", progErr)
	}
	return prog
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run checks analyzer against testdata/src/<name> relative to the test's
// working directory (the internal/lint package directory).
func Run(t *testing.T, analyzer *lint.Analyzer, name string) {
	t.Helper()
	p := program(t)
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	wants := map[string][]*want{} // "file:line" → expectations
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(p.Fset, path, nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		collectWants(t, p, f, wants)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}
	pkgTypes, info, err := p.CheckFiles("fixture/"+name, files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg := &lint.Package{Path: "fixture/" + name, Dir: dir, Files: files, Pkg: pkgTypes, Info: info}
	diags, err := lint.RunPackage(p, pkg, []*lint.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		if !matchWant(wants[key], d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", k, w.re.String())
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func matchWant(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses `// want "re" `re`...` comments.
func collectWants(t *testing.T, p *lint.Program, f *ast.File, wants map[string][]*want) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
			for _, pat := range splitQuoted(t, text[len("want "):], key) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("linttest: bad want pattern at %s: %v", key, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
}

// splitQuoted extracts the quoted (double- or back-quoted) patterns.
func splitQuoted(t *testing.T, s, key string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var end int
		switch s[0] {
		case '"':
			end = strings.Index(s[1:], `"`)
		case '`':
			end = strings.Index(s[1:], "`")
		default:
			t.Fatalf("linttest: malformed want at %s: %q", key, s)
		}
		if end < 0 {
			t.Fatalf("linttest: unterminated want pattern at %s", key)
		}
		quoted := s[:end+2]
		pat, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("linttest: bad want pattern at %s: %v", key, err)
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return pats
}
