// Package query implements a small TSQL2-flavoured query language for
// temporal aggregates, covering the constructs the paper discusses (§2):
// scalar aggregates over an interval-stamped relation, attribute grouping
// (GROUP BY Dept), and temporal grouping by instant (the TSQL2 default) or
// by span. A planner implements the query-optimizer strategies of §6.3,
// choosing between the linked list, the aggregation tree, and the k-ordered
// aggregation tree from relation metadata; an explicit USING clause
// overrides it.
//
// Grammar:
//
//	query  := [EXPLAIN [ANALYZE]] select
//	select := SELECT [ident ","] agg FROM ident [where] [group] [using]
//	agg    := ("COUNT"|"SUM"|"AVG"|"MIN"|"MAX") "(" ident ")"
//	where  := WHERE cond {AND cond}
//	cond   := ident op literal
//	op     := "=" | "<>" | "<" | "<=" | ">" | ">="
//	group  := GROUP BY item {"," item}
//	item   := ident | INSTANT | SPAN number
//	using  := USING ident [number]
//
// Keywords are case-insensitive; identifiers are case-sensitive.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokOp // = <> < <= > >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokOp:
		return "operator"
	}
	return "token"
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input, for error messages
}

// lex tokenizes the query. It returns a token slice ending with tokEOF.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '<':
			if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{tokOp, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '\'':
			j := strings.IndexByte(input[i+1:], '\'')
			if j < 0 {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : i+1+j], i})
			i += j + 2
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9':
			j := i + 1
			for j < len(input) && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

// isKeyword reports whether tok is the given keyword, case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
