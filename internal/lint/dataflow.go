package lint

import "go/ast"

// A FlowAnalysis is one forward dataflow problem over a CFG. F is the
// fact lattice: Entry seeds the entry block, Transfer pushes a fact
// through one node, Branch refines a fact along a conditional edge, Join
// merges facts at control-flow merges, and Equal detects the fixed point.
//
// Transfer and Branch must be pure during solving: the solver calls them
// repeatedly until facts stabilize. Reporting happens afterwards via
// WalkFacts, which replays each reachable block exactly once from its
// solved entry fact — analyzers set a "reporting" flag for that replay.
//
// The lattices used by the analyzers in this package are finite powerset
// maps (receiver key → state bitmask), so termination is structural; the
// solver still bounds iterations defensively.
type FlowAnalysis[F any] interface {
	Entry() F
	Transfer(n ast.Node, f F) F
	Branch(cond ast.Expr, taken bool, f F) F
	Join(a, b F) F
	Equal(a, b F) bool
}

// Forward solves fa over g and returns the entry fact of every reachable
// block. Unreachable blocks are absent from the result.
func Forward[F any](g *CFG, fa FlowAnalysis[F]) map[*Block]F {
	if len(g.Blocks) == 0 {
		return nil
	}
	in := map[*Block]F{g.Blocks[0]: fa.Entry()}
	work := []*Block{g.Blocks[0]}
	queued := map[*Block]bool{g.Blocks[0]: true}

	// Powerset lattices over a function body stabilize in a handful of
	// passes; the cap only guards against a non-monotone Transfer bug.
	maxSteps := (len(g.Blocks) + 1) * 64
	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := in[b]
		for _, n := range b.Nodes {
			out = fa.Transfer(n, out)
		}
		for i, succ := range b.Succs {
			f := out
			if b.Cond != nil && len(b.Succs) == 2 {
				f = fa.Branch(b.Cond, i == 0, f)
			}
			old, ok := in[succ]
			merged := f
			if ok {
				merged = fa.Join(old, f)
			}
			if !ok || !fa.Equal(old, merged) {
				in[succ] = merged
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}

// WalkFacts replays every reachable block once, in index order, calling
// visit with each node and the fact holding immediately before it. This
// is the reporting pass: the solved facts already include every loop
// contribution, so one replay sees the final state at each node.
func WalkFacts[F any](g *CFG, fa FlowAnalysis[F], in map[*Block]F, visit func(n ast.Node, f F)) {
	for _, b := range g.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			visit(n, f)
			f = fa.Transfer(n, f)
		}
	}
}

// funcBodies visits every function body in the files of a pass: each
// FuncDecl body and each FuncLit body is one independent flow.
func funcBodies(files []*ast.File, visit func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					visit(n.Body)
				}
			case *ast.FuncLit:
				visit(n.Body)
			}
			return true
		})
	}
}

// ---- shared bitmask-map fact helpers ----

// maskFact is the common fact shape: receiver key → small state bitmask,
// with absent keys meaning "initial state". Copy-on-write: transfers
// clone before mutating.
type maskFact map[string]uint8

func (f maskFact) clone() maskFact {
	out := make(maskFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// joinMasks unions two mask maps key-wise (may-analysis: a state reached
// on either path is reachable at the merge).
func joinMasks(a, b maskFact) maskFact {
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func equalMasks(a, b maskFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
