package query

import (
	"fmt"
	"strconv"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
)

// ExecuteLive evaluates a SELECT ... LIVE query against one consistent
// snapshot of a shared live evaluator. Every aggregate of the select list
// reads the same epoch: the point read (AT), the range read (VALID
// OVERLAPS), and the full constant-interval result are all evaluated over
// exactly the tuples admitted when the snapshot was taken, however far
// ingestion has advanced since. The snapshot read is recorded as a
// "live-snapshot-read" span carrying the epoch attributes, so a traced
// live query shows up in /debug/traces and /debug/queries like any batch
// query.
func ExecuteLive(q *Query, snap *core.LiveSnapshot, tr *obs.QueryTrace) (*QueryResult, error) {
	if !q.Live {
		return nil, fmt.Errorf("query: ExecuteLive needs a LIVE query, got %q", q)
	}
	ep := snap.Epoch()
	plan := Plan{Live: true, Reason: fmt.Sprintf("snapshot read at %s", ep)}
	tr.SetPlan(plan.Algorithm(), 0, plan.String())

	span := tr.StartSpan("live-snapshot-read")
	span.SetAttr("epoch_seq", strconv.FormatInt(ep.Seq, 10))
	span.SetAttr("segments", strconv.Itoa(ep.Segments))
	span.SetAttr("tail", strconv.Itoa(ep.Tail))
	defer span.End()

	gr := GroupResult{}
	for _, a := range q.Aggs {
		f := aggregate.For(a.Kind)
		var (
			res *core.Result
			err error
		)
		switch {
		case q.At != nil:
			// The point read keeps the AT result shape of the batch path:
			// one row covering exactly [at, at]. Range-restricted live reads
			// go through the sealed segments' memoized interval indexes —
			// only the mutable tail is swept per epoch (index-live-tail,
			// S37).
			res, err = snap.RangeIndexed(f, interval.At(*q.At))
			span.SetAttr("range_path", "index-live-tail")
		case q.Window != nil:
			res, err = snap.RangeIndexed(f, *q.Window)
			span.SetAttr("range_path", "index-live-tail")
		default:
			res, err = snap.Result(f)
		}
		if err != nil {
			return nil, err
		}
		gr.Results = append(gr.Results, res)
		gr.AllStats = append(gr.AllStats, core.Stats{})
	}
	// Like the shared sweep pass, the epoch's tuples are read once for the
	// whole select list: charge them to the first slot only, so trace
	// totals reflect work done rather than aggregates served.
	gr.AllStats[0] = core.Stats{Tuples: snap.Len()}
	gr.Result = gr.Results[0]
	gr.Stats = gr.AllStats[0]
	sinkTuples(tr, "live-snapshot", snap.Len())
	traceStats(tr, gr.Stats)
	tr.SetGroups(1)
	return &QueryResult{Query: q, Plan: plan, Groups: []GroupResult{gr}}, nil
}
