package query

import (
	"strings"
	"testing"

	"tempagg/internal/aggregate"
)

func mustParse(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func TestParsePaperQuery(t *testing.T) {
	// The paper's example (§5.1): SELECT COUNT(Name) FROM Employed — the
	// default grouping is by instant.
	q := mustParse(t, "SELECT COUNT(Name) FROM Employed")
	if q.Aggs[0].Kind != aggregate.Count || q.Aggs[0].Attr != AttrName {
		t.Fatalf("parsed %v", q.Aggs[0])
	}
	if q.Relation != "Employed" {
		t.Fatalf("relation = %q", q.Relation)
	}
	if q.Temporal != ByInstant {
		t.Fatal("default temporal grouping must be by instant")
	}
	if q.GroupAttr != nil {
		t.Fatal("no attribute grouping expected")
	}
}

func TestParseGroupByAttribute(t *testing.T) {
	// The paper's intro query: average salary grouped by department — here
	// the Name attribute plays the role of the partitioning attribute.
	q := mustParse(t, "SELECT Name, AVG(Salary) FROM Employed GROUP BY Name")
	if q.Aggs[0].Kind != aggregate.Avg || q.Aggs[0].Attr != AttrValue {
		t.Fatalf("parsed %v", q.Aggs[0])
	}
	if q.GroupAttr == nil || *q.GroupAttr != AttrName {
		t.Fatal("GROUP BY Name not parsed")
	}
}

func TestParseGroupBySpan(t *testing.T) {
	q := mustParse(t, "SELECT SUM(Salary) FROM Employed GROUP BY SPAN 100")
	if q.Temporal != BySpan || q.Span != 100 {
		t.Fatalf("span grouping = %v/%d", q.Temporal, q.Span)
	}
	q = mustParse(t, "SELECT SUM(Salary) FROM Employed GROUP BY Name, SPAN 50")
	if q.GroupAttr == nil || q.Temporal != BySpan || q.Span != 50 {
		t.Fatal("combined attribute and span grouping not parsed")
	}
	q = mustParse(t, "SELECT SUM(Salary) FROM Employed GROUP BY INSTANT")
	if q.Temporal != ByInstant {
		t.Fatal("GROUP BY INSTANT not parsed")
	}
}

func TestParseWhere(t *testing.T) {
	q := mustParse(t,
		"SELECT MIN(Salary) FROM Employed WHERE Salary >= 36 AND Name <> 'Karen' AND Start < 100")
	if len(q.Where) != 3 {
		t.Fatalf("parsed %d conditions", len(q.Where))
	}
	if q.Where[0].Attr != AttrValue || q.Where[0].Op != ">=" || q.Where[0].Num != 36 {
		t.Fatalf("cond 0 = %+v", q.Where[0])
	}
	if q.Where[1].Attr != AttrName || !q.Where[1].IsStr || q.Where[1].Str != "Karen" {
		t.Fatalf("cond 1 = %+v", q.Where[1])
	}
	if q.Where[2].Attr != AttrStart || q.Where[2].Num != 100 {
		t.Fatalf("cond 2 = %+v", q.Where[2])
	}
}

func TestParseUsing(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(Name) FROM Employed USING KTREE 4")
	if q.Using != "KTREE" || !q.HasUsingK || q.UsingK != 4 {
		t.Fatalf("USING = %q K=%d", q.Using, q.UsingK)
	}
	q = mustParse(t, "select count(name) from Employed using tuma")
	if q.Using != "TUMA" {
		t.Fatalf("USING = %q", q.Using)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, "select count(Name) from Employed group by name")
	if q.Aggs[0].Kind != aggregate.Count || q.GroupAttr == nil {
		t.Fatal("lower-case keywords must parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT COUNT Name FROM Employed",
		"SELECT COUNT(Name FROM Employed",
		"SELECT MEDIAN(Salary) FROM Employed",
		"SELECT COUNT(Name)",
		"SELECT COUNT(Name) FROM",
		"SELECT COUNT(Name) FROM Employed WHERE",
		"SELECT COUNT(Name) FROM Employed WHERE Salary",
		"SELECT COUNT(Name) FROM Employed WHERE Salary = ",
		"SELECT COUNT(Name) FROM Employed WHERE Salary ~ 5",
		"SELECT COUNT(Name) FROM Employed GROUP BY",
		"SELECT COUNT(Name) FROM Employed GROUP BY SPAN",
		"SELECT COUNT(Name) FROM Employed GROUP BY SPAN 0",
		"SELECT COUNT(Name) FROM Employed GROUP BY SPAN -5",
		"SELECT COUNT(Name) FROM Employed GROUP BY Bogus",
		"SELECT COUNT(Name) FROM Employed USING WISHFUL",
		"SELECT COUNT(Name) FROM Employed trailing garbage",
		"SELECT SUM(Name) FROM Employed",           // only COUNT may aggregate Name
		"SELECT AVG(Start) FROM Employed",          // timestamps are not aggregable
		"SELECT Salary, COUNT(Name) FROM Employed", // only Name can group
		"SELECT COUNT(Name) FROM Employed WHERE Name = 5",
		"SELECT COUNT(Name) FROM Employed WHERE Salary = 'x'",
		"SELECT Name, COUNT(Name) FROM Employed GROUP BY Salary",
		"SELECT COUNT(Name) FROM Employed WHERE Name = 'unterminated",
		"SELECT COUNT(Bogus) FROM Employed",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}

func TestParseLexerErrors(t *testing.T) {
	if _, err := Parse("SELECT COUNT(Name) FROM Employed WHERE Salary = #"); err == nil {
		t.Fatal("expected lexer error for '#'")
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT COUNT(Name) FROM Employed",
		"SELECT Name, AVG(Salary) FROM Employed GROUP BY Name",
		"SELECT SUM(Salary) FROM Employed WHERE Salary > 30 GROUP BY SPAN 100 USING LIST",
		"SELECT MAX(Salary) FROM Employed WHERE Name = 'Karen' AND Salary <> 10 USING KTREE 2",
	}
	for _, sql := range queries {
		q := mustParse(t, sql)
		again := mustParse(t, q.String())
		if q.String() != again.String() {
			t.Errorf("round trip changed %q -> %q", q.String(), again.String())
		}
	}
}

func TestNegativeNumberLiteral(t *testing.T) {
	q := mustParse(t, "SELECT SUM(Salary) FROM R WHERE Salary > -10")
	if q.Where[0].Num != -10 {
		t.Fatalf("negative literal parsed as %d", q.Where[0].Num)
	}
}

func TestAttrString(t *testing.T) {
	if AttrName.String() != "Name" || AttrValue.String() != "Salary" ||
		AttrStart.String() != "Start" || AttrEnd.String() != "Stop" {
		t.Fatal("attribute names wrong")
	}
	if !strings.HasPrefix(Attr(9).String(), "Attr(") {
		t.Fatal("unknown attribute name wrong")
	}
}
