package workload

import (
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/order"
)

func TestRetroBoundedIsKOrdered(t *testing.T) {
	// With a uniform arrival rate of n/lifespan and a delay bound D, two
	// tuples can swap only if their starts are within D of each other, so
	// the k-orderedness is bounded by the tuples per D-window (plus burst
	// slack). §6: "For a uniform arrival rate, the two are identical."
	const n = 4000
	const delay = 2000 // instants; expected ~8 tuples per window at 1M lifespan
	rel, err := Generate(Config{Tuples: n, Order: RetroBounded, MaxDelay: delay, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	k := order.KOrderedness(rel.Tuples)
	if k == 0 {
		t.Fatal("retro-bounded relation should show some disorder")
	}
	// Generous burst allowance: 10x the expected window population.
	expected := int(delay * n / int64(DefaultLifespan))
	if k > 10*expected+10 {
		t.Fatalf("k-orderedness %d far exceeds the delay-implied bound ~%d", k, expected)
	}
}

func TestRetroBoundedFeedsKTree(t *testing.T) {
	rel, err := Generate(Config{Tuples: 2000, Order: RetroBounded, MaxDelay: 1000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	k := order.KOrderedness(rel.Tuples)
	f := aggregate.For(aggregate.Count)
	res, stats, err := core.Run(core.Spec{Algorithm: core.KOrderedTree, K: k}, f, rel.Tuples)
	if err != nil {
		t.Fatalf("ktree k=%d over retro-bounded input: %v", k, err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Collected == 0 {
		t.Fatal("retro-bounded input should allow garbage collection")
	}
	if !res.Equal(core.Reference(f, rel.Tuples)) {
		t.Fatal("ktree result differs from oracle")
	}
}

func TestRetroBoundedDelayZeroRejected(t *testing.T) {
	if _, err := Generate(Config{Tuples: 10, Order: RetroBounded}); err == nil {
		t.Fatal("MaxDelay <= 0 must be rejected")
	}
}

func TestRetroBoundedDeterministic(t *testing.T) {
	a, err := Generate(Config{Tuples: 300, Order: RetroBounded, MaxDelay: 500, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Tuples: 300, Order: RetroBounded, MaxDelay: 500, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatal("same seed produced different retro-bounded relations")
		}
	}
}
