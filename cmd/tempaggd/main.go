// Command tempaggd serves a catalog of temporal relations over TCP with a
// line protocol (one query in, one JSON reply out), and doubles as a client.
//
// Usage:
//
//	tempaggd -db ./relations -listen 127.0.0.1:7411       # server
//	tempaggd -db ./relations -listen 127.0.0.1:7411 \
//	         -http 127.0.0.1:7412 -slow-query 250ms       # + admin surface
//	tempaggd -connect 127.0.0.1:7411 -query "SELECT ..."  # one-shot client
//
// With -http the daemon exposes /metrics (Prometheus text format),
// /debug/traces (the last -traces query traces as JSON, span trees
// included), /debug/queries (rolling per-stage latency window: histogram
// quantiles, exemplar trace IDs, and a burn-rate-ranked slow-stage view),
// and the standard /debug/pprof/* profiling endpoints. Queries slower than
// -slow-query are logged to stderr as one JSON line each; 0 disables the
// slow-query log. EXPLAIN and EXPLAIN ANALYZE statements work over the
// wire: the reply's "explain" field carries the rendered report.
//
// See internal/server for the protocol and README.md for the metrics.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tempagg/internal/catalog"
	"tempagg/internal/core"
	"tempagg/internal/obs"
	"tempagg/internal/server"
)

func main() {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "tempaggd:", err)
		os.Exit(1)
	}
}

// serveConfig is the server-mode configuration from flags.
type serveConfig struct {
	db          string
	listen      string
	httpAddr    string
	slowQuery   time.Duration
	traces      int
	rangeIndex  bool
	resultCache int
}

func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("tempaggd", flag.ContinueOnError)
	var (
		db       = fs.String("db", "", "catalog directory to serve")
		listen   = fs.String("listen", "", "address to listen on, e.g. 127.0.0.1:7411")
		httpAddr = fs.String("http", "", "admin HTTP address for /metrics, /debug/traces, /debug/queries, /debug/pprof")
		slow     = fs.Duration("slow-query", 0, "log queries slower than this to stderr (0 disables)")
		traces   = fs.Int("traces", 128, "query traces kept for /debug/traces")
		connect  = fs.String("connect", "", "server address to query as a client")
		sql      = fs.String("query", "", "query to send in client mode")
		rangeIdx = fs.Bool("range-index", true, "serve eligible range queries from resident interval indexes")
		resCache = fs.Int("result-cache", core.DefaultResultCacheCapacity, "result-cache entries (0 = default capacity, negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *listen != "" && *connect != "":
		return fmt.Errorf("-listen and -connect are mutually exclusive")
	case *listen != "":
		if *db == "" {
			return fmt.Errorf("-db is required with -listen")
		}
		cfg := serveConfig{db: *db, listen: *listen, httpAddr: *httpAddr,
			slowQuery: *slow, traces: *traces,
			rangeIndex: *rangeIdx, resultCache: *resCache}
		return serve(cfg, out, nil, stop)
	case *connect != "":
		if *sql == "" {
			return fmt.Errorf("-query is required with -connect")
		}
		c, err := server.Dial(*connect)
		if err != nil {
			return err
		}
		defer c.Close()
		raw, err := c.QueryRaw(*sql)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", raw)
		return nil
	}
	return fmt.Errorf("one of -listen or -connect is required")
}

// serve runs server mode until stop closes. ready, when non-nil, receives
// the bound query and admin addresses once both listeners are up (admin is
// empty when -http is off) — the smoke test uses it to find its ports.
func serve(cfg serveConfig, out io.Writer, ready func(queryAddr, adminAddr string), stop <-chan struct{}) error {
	cat, err := catalog.Open(cfg.db)
	if err != nil {
		return err
	}
	var slowLog *obs.SlowLog
	if cfg.slowQuery > 0 {
		slowLog = obs.NewSlowLog(os.Stderr, cfg.slowQuery)
	}
	o := obs.NewObserver(cfg.traces, slowLog)
	if cfg.slowQuery > 0 {
		// One threshold for both slow surfaces: a query that lands in the
		// stderr slow log also burns budget in the /debug/queries window.
		o.Queries = obs.NewQueryStats(obs.QueryStatsConfig{SlowThreshold: cfg.slowQuery})
	}
	// Live relations publish epoch/seal/reader gauges into the same
	// registry the /metrics endpoint serves.
	cat.SetLiveMetrics(o.Metrics)
	// Range-query acceleration (S37): resident interval indexes and the
	// versioned result cache, both on by default.
	if cfg.rangeIndex {
		cat.EnableRangeIndex()
	}
	if cfg.resultCache >= 0 {
		cat.EnableResultCache(cfg.resultCache)
	}
	defer cat.Close()
	srv := server.New(cat, server.WithObserver(o))

	lis, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving %d relations on %s\n", len(cat.Names()), lis.Addr())

	adminAddr := ""
	var admin *http.Server
	adminErr := make(chan error, 1)
	if cfg.httpAddr != "" {
		alis, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			lis.Close()
			return err
		}
		adminAddr = alis.Addr().String()
		admin = &http.Server{Handler: server.AdminMux(o)}
		go func() {
			if err := admin.Serve(alis); !errors.Is(err, http.ErrServerClosed) {
				adminErr <- err
				return
			}
			adminErr <- nil
		}()
		fmt.Fprintf(out, "admin http on %s (/metrics, /debug/traces, /debug/queries, /debug/pprof)\n", adminAddr)
	}
	if ready != nil {
		ready(lis.Addr().String(), adminAddr)
	}

	stopErr := make(chan error, 1)
	go func() {
		<-stop
		var cerr error
		if admin != nil {
			cerr = admin.Close()
		}
		if serr := srv.Close(); cerr == nil {
			cerr = serr
		}
		stopErr <- cerr
	}()
	err = srv.Serve(lis)
	if admin != nil {
		if aerr := <-adminErr; err == nil {
			err = aerr
		}
	}
	select {
	case <-stop:
		// Shutdown path: the stop goroutine owns the Close errors.
		if cerr := <-stopErr; err == nil {
			err = cerr
		}
	default:
	}
	// The metrics sink has no buffered state today, but a sink flush
	// failure at shutdown must reach the operator, not vanish.
	if ferr := o.Metrics.Flush(); err == nil {
		err = ferr
	}
	return err
}
