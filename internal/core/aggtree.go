package core

import (
	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// treeNode is one node of the aggregation tree, in the paper's space-
// efficient "single timestamp per node" variant (§6.2, 16 bytes): a split
// timestamp, an aggregate contribution, and two child pointers. A node's
// covered range is implicit from the root range and the splits on the path
// to it: the left child covers [lo, split], the right [split+1, hi]. A node
// with no children is a leaf and encodes one constant interval. Internal
// nodes always have exactly two children.
//
// The state at a node is the contribution of the tuples whose intervals
// completely overlapped the node when they were inserted — the paper's
// shortcut that avoids searching below fully covered nodes. The total
// aggregate for a leaf's constant interval is the merge of the states on its
// root path (every overlapping tuple contributes at exactly one such node).
type treeNode struct {
	split       interval.Time
	state       aggregate.State
	left, right *treeNode
}

func (n *treeNode) isLeaf() bool { return n.left == nil }

// treeInsert descends the subtree rooted at n (covering [lo, hi]) with the
// tuple interval [s, e] and value v, splitting leaves at the tuple's
// boundary timestamps; split nodes come from the arena. It returns the
// number of nodes created. Precondition: [s, e] overlaps [lo, hi].
func treeInsert(f aggregate.Func, ar *arena[treeNode], n *treeNode, lo, hi, s, e interval.Time, v int64) int {
	grown := 0
	for {
		if s <= lo && hi <= e {
			// The tuple completely overlaps this node: record the
			// contribution here and do not search further (§5.1).
			n.state = f.Add(n.state, v)
			return grown
		}
		if n.isLeaf() {
			// A tuple boundary falls inside this constant interval: split
			// the leaf. The old leaf's state stays at the (now internal)
			// node — it applies to both halves.
			if s > lo {
				n.split = s - 1
			} else {
				n.split = e
			}
			n.left = ar.alloc()
			n.right = ar.alloc()
			grown += 2
			// Fall through: descend into the overlapped half/halves.
		}
		// Internal node: at most one side needs a recursive call; the other
		// is handled iteratively to keep right-spine chains cheap.
		if s <= n.split && e > n.split {
			grown += treeInsert(f, ar, n.left, lo, n.split, s, e, v)
			lo, n = n.split+1, n.right
			continue
		}
		if s <= n.split {
			hi, n = n.split, n.left
		} else {
			lo, n = n.split+1, n.right
		}
	}
}

// emitSubtree walks the subtree rooted at n (covering [lo, hi]) left to
// right, merging each node's contribution into the accumulated state acc,
// and appends one row per leaf. It recurses on left children and iterates on
// right children so the right-spine chains produced by sorted input do not
// deepen the call stack.
func emitSubtree(f aggregate.Func, n *treeNode, lo, hi interval.Time, acc aggregate.State, res *Result) {
	for {
		acc = f.Merge(acc, n.state)
		if n.isLeaf() {
			res.Rows = append(res.Rows, Row{
				Interval: interval.MustNew(lo, hi),
				State:    acc,
			})
			return
		}
		emitSubtree(f, n.left, lo, n.split, acc, res)
		lo, n = n.split+1, n.right
	}
}

// Tree implements the aggregation tree algorithm (§5.1): an *unbalanced*
// binary tree over the constant intervals, built in one scan, followed by a
// depth-first traversal that accumulates aggregate contributions from root
// to leaves and emits one result row per leaf, in time order.
//
// The tree is deliberately not balanced — this is the paper's algorithm, and
// its O(n²) degeneration on sorted input is one of the paper's findings
// (Figure 7). See BalancedTree for the future-work variant that rebalances.
type Tree struct {
	noCopy noCopy

	f     aggregate.Func
	ar    arena[treeNode]
	root  *treeNode
	span  interval.Interval // the root's covered range
	es    obs.EvalSink
	stats statsCell
}

var _ Evaluator = (*Tree)(nil)

// NewAggregationTree returns an aggregation-tree evaluator for f. The tree
// starts as a single leaf covering [0, ∞] with the identity state
// (Figure 3.a).
func NewAggregationTree(f aggregate.Func) *Tree {
	return NewAggregationTreeRange(f, interval.Universe())
}

// NewAggregationTreeRange returns an aggregation tree covering only the
// given range; tuples are clipped to it on insertion. This is the building
// block of the partitioned limited-main-memory evaluation (§5.1/§7), where
// separate trees cover separate regions of the time-line.
func NewAggregationTreeRange(f aggregate.Func, span interval.Interval) *Tree {
	t := &Tree{f: f, ar: newArena[treeNode](treeSlabPool), span: span}
	t.root = t.ar.alloc()
	t.stats.init(1)
	return t
}

func (t *Tree) setSink(s obs.Sink) {
	if s == nil {
		return // nil Sink: instrumentation disabled (obs.Sink contract)
	}
	t.es = s.Evaluator(AggregationTree.String())
	t.es.NodesAllocated(1) // the initial universe leaf
}

// Add inserts one tuple, splitting the leaves containing its start and end
// timestamps and updating the highest fully covered nodes. A tuple outside
// the tree's range is ignored; one straddling it is clipped.
func (t *Tree) Add(tu tuple.Tuple) error {
	if err := tu.Valid.Validate(); err != nil {
		return err
	}
	iv, ok := tu.Valid.Intersect(t.span)
	if !ok {
		return nil
	}
	grown := treeInsert(t.f, &t.ar, t.root, t.span.Start, t.span.End,
		iv.Start, iv.End, tu.Value)
	t.stats.grow(grown)
	t.stats.addTuple()
	if t.es != nil {
		t.es.TuplesProcessed(1)
		t.es.NodesAllocated(grown)
	}
	return nil
}

// AddBatch absorbs one page of tuples. Per-tuple work matches Add exactly
// (the stats counters advance tuple by tuple, so a concurrent scrape sees
// the same progression); only the obs sink publication is batched, one
// event pair per page instead of two interface calls per tuple.
func (t *Tree) AddBatch(ts []tuple.Tuple) error {
	grown, added := 0, 0
	var err error
	for i := range ts {
		if err = ts[i].Valid.Validate(); err != nil {
			break
		}
		iv, ok := ts[i].Valid.Intersect(t.span)
		if !ok {
			continue
		}
		g := treeInsert(t.f, &t.ar, t.root, t.span.Start, t.span.End,
			iv.Start, iv.End, ts[i].Value)
		t.stats.grow(g)
		t.stats.addTuple()
		grown += g
		added++
	}
	if t.es != nil {
		t.es.TuplesProcessed(added)
		t.es.NodesAllocated(grown)
	}
	return err
}

// Finish performs the depth-first traversal (§5.1), merging each node's
// contribution into the accumulated state and emitting one row per leaf,
// then returns the arena's slabs to the shared pool.
func (t *Tree) Finish() (*Result, error) {
	// A full binary tree with L leaves has 2L-1 nodes; size Rows for the
	// exact leaf count so emission never reallocates.
	leaves := (int(t.stats.liveNodes.Load()) + 1) / 2
	res := &Result{Func: t.f, Rows: make([]Row, 0, leaves)}
	emitSubtree(t.f, t.root, t.span.Start, t.span.End, t.f.Zero(), res)
	t.root = nil
	slabs, reused := t.ar.release()
	if t.es != nil {
		t.es.PeakNodes(int(t.stats.peakNodes.Load()))
		t.es.ArenaRelease(slabs, reused)
	}
	return res, nil
}

// Stats reports the evaluator's counters.
func (t *Tree) Stats() Stats { return t.stats.snapshot() }
